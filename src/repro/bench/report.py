"""The ``BENCH_<version>.json`` document and the regression gate.

One benchmark run produces a schema-versioned JSON document — machine
metadata, per-scenario macro stats, per-hot-path micro stats — written
at the repo root as ``BENCH_1.json`` (the schema version is in the
filename, so a future schema bump leaves old trajectory files readable
side by side).  :func:`compare_reports` turns two documents into a
per-scenario delta table and a verdict: wall-clock (macro) and median
ns/op (micro) regressions beyond ``--fail-threshold`` fail the gate;
workload drift (event/packet counts changed) is reported separately
because it means the *benchmark* changed, not the code speed.
"""

from __future__ import annotations

import json
import math
import re
import time
from typing import Dict, List, Optional

__all__ = [
    "PROFILE_SCHEMA_NAME",
    "SCHEMA_VERSION",
    "bench_filename",
    "build_profile_document",
    "build_report",
    "compare_reports",
    "load_report",
    "metadata_mismatches",
    "metadata_warnings",
    "render_comparison",
    "validate_profile",
    "validate_report",
    "write_report",
]

#: Bumped when the document shape changes incompatibly.
SCHEMA_VERSION = 1

#: ``schema`` field value for version ``v``.
SCHEMA_NAME = "repro.bench/{version}"

#: Keys every macro-scenario stats block must carry.
MACRO_REQUIRED_KEYS = frozenset({
    "figure", "description", "scale", "seed", "wall_s", "events", "packets",
    "events_per_sec", "packets_per_sec", "sim_time_s", "sim_time_ratio",
    "peak_mem_kb", "deterministic", "hot_callbacks", "workload",
})

#: Keys every microbenchmark stats block must carry.
MICRO_REQUIRED_KEYS = frozenset({
    "description", "n", "ops", "repetitions", "warmup",
    "min_ns_per_op", "median_ns_per_op", "mean_ns_per_op",
})


def bench_filename(version: int = SCHEMA_VERSION) -> str:
    """Canonical trajectory filename for schema ``version``."""
    return f"BENCH_{version}.json"


def build_report(scenarios: Dict[str, dict], micro: Dict[str, dict],
                 machine: dict, scale: float, seed: int,
                 quick: bool = False, label: Optional[str] = None) -> dict:
    """Assemble the versioned benchmark document."""
    return {
        "schema": SCHEMA_NAME.format(version=SCHEMA_VERSION),
        "schema_version": SCHEMA_VERSION,
        "created_unix": time.time(),
        "label": label,
        "quick": quick,
        "scale": scale,
        "seed": seed,
        "machine": machine,
        "scenarios": scenarios,
        "micro": micro,
    }


def write_report(doc: dict, path: str) -> str:
    """Write ``doc`` as stable, diff-friendly JSON; returns ``path``."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def load_report(path: str) -> dict:
    """Load and validate one benchmark document; raises ``ValueError``
    with every problem listed when the file does not match the schema."""
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    problems = validate_report(doc)
    if problems:
        raise ValueError(f"{path} is not a valid bench report:\n  "
                         + "\n  ".join(problems))
    return doc


def validate_report(doc: dict) -> List[str]:
    """Schema violations in ``doc`` as human-readable strings."""
    problems: List[str] = []
    if not isinstance(doc, dict):
        return ["document is not a JSON object"]
    expected = SCHEMA_NAME.format(version=SCHEMA_VERSION)
    if doc.get("schema") != expected:
        problems.append(f"schema is {doc.get('schema')!r}, "
                        f"expected {expected!r}")
    for key in ("machine", "scenarios", "micro"):
        if not isinstance(doc.get(key), dict):
            problems.append(f"missing or non-object {key!r} section")
    for name, stats in (doc.get("scenarios") or {}).items():
        if not isinstance(stats, dict):
            problems.append(f"scenario {name!r} is not an object")
            continue
        missing = MACRO_REQUIRED_KEYS - stats.keys()
        if missing:
            problems.append(f"scenario {name!r} missing keys "
                            f"{sorted(missing)}")
    for name, stats in (doc.get("micro") or {}).items():
        if not isinstance(stats, dict):
            problems.append(f"microbenchmark {name!r} is not an object")
            continue
        missing = MICRO_REQUIRED_KEYS - stats.keys()
        if missing:
            problems.append(f"microbenchmark {name!r} missing keys "
                            f"{sorted(missing)}")
    return problems


# ----------------------------------------------------------------------
# profile.json (hot-path attribution, ``--profile``)
# ----------------------------------------------------------------------

#: ``schema`` field of the cProfile attribution document.
PROFILE_SCHEMA_NAME = "repro.profile/1"

#: Keys every attributed function entry must carry
#: (see :class:`repro.telemetry.profiling.FunctionProfiler`).
PROFILE_FUNCTION_KEYS = frozenset({
    "function", "file", "line", "calls", "primitive_calls",
    "tottime_s", "cumtime_s",
})


def build_profile_document(scenarios: Dict[str, dict], machine: dict,
                           scale: float, seed: int) -> dict:
    """Assemble the ``profile.json`` attribution document."""
    return {
        "schema": PROFILE_SCHEMA_NAME,
        "created_unix": time.time(),
        "scale": scale,
        "seed": seed,
        "machine": machine,
        "scenarios": scenarios,
    }


def validate_profile(doc: dict) -> List[str]:
    """Schema violations in a ``profile.json`` document."""
    problems: List[str] = []
    if not isinstance(doc, dict):
        return ["document is not a JSON object"]
    if doc.get("schema") != PROFILE_SCHEMA_NAME:
        problems.append(f"schema is {doc.get('schema')!r}, "
                        f"expected {PROFILE_SCHEMA_NAME!r}")
    if not isinstance(doc.get("scenarios"), dict):
        problems.append("missing or non-object 'scenarios' section")
        return problems
    for name, block in doc["scenarios"].items():
        functions = block.get("functions") if isinstance(block, dict) else None
        if not isinstance(functions, list):
            problems.append(f"scenario {name!r} has no 'functions' list")
            continue
        for i, entry in enumerate(functions):
            missing = PROFILE_FUNCTION_KEYS - entry.keys()
            if missing:
                problems.append(f"scenario {name!r} function[{i}] missing "
                                f"keys {sorted(missing)}")
    return problems


# ----------------------------------------------------------------------
# Comparison / regression gate
# ----------------------------------------------------------------------


def _pct(old: float, new: float) -> Optional[float]:
    """Percent change new vs old (positive = slower); None when old=0."""
    if not old:
        return None
    return (new - old) / old * 100.0


#: Machine-metadata keys forming the host fingerprint: two timings are
#: only directly comparable when all of these match.  A mismatch here
#: means different hardware or OS — a *hard* strict-compare failure.
#: (``platform`` is compared with the kernel patchlevel stripped; a
#: patchlevel-only drift is routine on auto-updating CI hosts and is
#: warn-only, see :func:`metadata_warnings`.)
MACHINE_FINGERPRINT_KEYS = ("platform", "machine", "processor")

#: Machine-metadata keys that drift without changing the speed class of
#: the host (container CPU quotas resize; kernels take point releases).
#: Mismatches here are *warn-only*: annotated, never failing the
#: strict gate.
MACHINE_WARN_KEYS = ("cpu_count",)

#: ``1.2.3`` -> ``1.2``: normalizes version tokens inside a platform
#: string so kernel patch releases compare equal.
_PATCHLEVEL = re.compile(r"(\d+\.\d+)(?:\.\d+)+")


def _strip_patchlevel(value: object) -> object:
    """Platform string with version tokens truncated to major.minor."""
    if not isinstance(value, str):
        return value
    return _PATCHLEVEL.sub(r"\1", value)


def metadata_mismatches(old: dict, new: dict) -> List[str]:
    """*Hard* environment differences that make ``old`` vs ``new``
    timings apples-to-oranges: machine fingerprint (different hardware
    or OS beyond a kernel patchlevel), interpreter (python version or
    implementation), workload scale.

    Each is a human-readable warning; with ``strict`` comparisons any
    of these fails the gate outright instead of merely annotating it.
    Benign drift (CPU quota, kernel patch release) is reported by
    :func:`metadata_warnings` instead and never fails the gate.
    """
    mismatches: List[str] = []
    old_m = old.get("machine") or {}
    new_m = new.get("machine") or {}
    old_fp = {k: _strip_patchlevel(old_m.get(k))
              for k in MACHINE_FINGERPRINT_KEYS}
    new_fp = {k: _strip_patchlevel(new_m.get(k))
              for k in MACHINE_FINGERPRINT_KEYS}
    if old_fp != new_fp:
        changed = ", ".join(
            f"{k} {old_m.get(k)!r} vs {new_m.get(k)!r}"
            for k in MACHINE_FINGERPRINT_KEYS if old_fp[k] != new_fp[k])
        mismatches.append(f"machine fingerprints (platform) differ "
                          f"({changed}); timings are not directly "
                          "comparable")
    old_py = (old_m.get("implementation"), old_m.get("python"))
    new_py = (new_m.get("implementation"), new_m.get("python"))
    if old_py != new_py:
        mismatches.append(f"python versions differ "
                          f"({old_py[0]} {old_py[1]} vs "
                          f"{new_py[0]} {new_py[1]}); interpreter speed "
                          "changes masquerade as code speed changes")
    if old.get("scale") != new.get("scale"):
        mismatches.append(f"workload scales differ ({old.get('scale')} vs "
                          f"{new.get('scale')}); counts will not match")
    return mismatches


def metadata_warnings(old: dict, new: dict) -> List[str]:
    """*Warn-only* environment drift: annotated in the comparison but
    never failing the strict gate — CPU-count changes (container
    quotas) and platform strings differing only in a version
    patchlevel (kernel point releases)."""
    warnings: List[str] = []
    old_m = old.get("machine") or {}
    new_m = new.get("machine") or {}
    for key in MACHINE_WARN_KEYS:
        if old_m.get(key) != new_m.get(key):
            warnings.append(f"{key} differs ({old_m.get(key)!r} vs "
                            f"{new_m.get(key)!r}); warn-only, not a "
                            "strict-compare failure")
    old_plat, new_plat = old_m.get("platform"), new_m.get("platform")
    if (old_plat != new_plat
            and _strip_patchlevel(old_plat) == _strip_patchlevel(new_plat)):
        warnings.append(f"platform patchlevels differ ({old_plat!r} vs "
                        f"{new_plat!r}); warn-only, not a strict-compare "
                        "failure")
    return warnings


def compare_reports(old: dict, new: dict,
                    fail_threshold: Optional[float] = None,
                    strict: bool = False) -> dict:
    """Per-scenario deltas between two bench documents.

    Returns ``{"rows", "notes", "mismatches", "warnings", "regressions",
    "geomean", "failed"}``: rows feed :func:`render_comparison`;
    ``regressions`` lists rows whose slowdown exceeds ``fail_threshold``
    percent; ``mismatches`` lists *hard* environment differences
    (machine fingerprint, python version, scale) that make the two
    documents apples-to-oranges, while ``warnings`` lists benign drift
    (cpu_count, platform patchlevel) that never fails the gate;
    ``geomean`` summarizes the old/new speedup across comparable rows
    (macro wall-clock and micro ns/op alike); ``failed`` is True when a
    threshold was given and a comparable row exceeded it, or — with
    ``strict`` — when any *hard* metadata mismatch exists.
    """
    rows: List[dict] = []
    mismatches = metadata_mismatches(old, new)
    warnings = metadata_warnings(old, new)
    notes: List[str] = list(mismatches) + list(warnings)

    old_scen = old.get("scenarios") or {}
    new_scen = new.get("scenarios") or {}
    for name in sorted(set(old_scen) | set(new_scen)):
        if name not in old_scen or name not in new_scen:
            notes.append(f"scenario {name!r} only in "
                         f"{'new' if name in new_scen else 'old'} report")
            continue
        before, after = old_scen[name], new_scen[name]
        comparable = (before.get("events") == after.get("events")
                      and before.get("packets") == after.get("packets"))
        if not comparable:
            notes.append(
                f"scenario {name!r} workload drifted "
                f"(events {before.get('events')} -> {after.get('events')}, "
                f"packets {before.get('packets')} -> "
                f"{after.get('packets')}); excluded from the gate")
        rows.append({
            "kind": "macro",
            "name": name,
            "metric": "wall_s",
            "old": before.get("wall_s"),
            "new": after.get("wall_s"),
            "pct": _pct(before.get("wall_s") or 0.0,
                        after.get("wall_s") or 0.0),
            "comparable": comparable,
        })

    old_micro = old.get("micro") or {}
    new_micro = new.get("micro") or {}
    for name in sorted(set(old_micro) | set(new_micro)):
        if name not in old_micro or name not in new_micro:
            notes.append(f"microbenchmark {name!r} only in "
                         f"{'new' if name in new_micro else 'old'} report")
            continue
        before, after = old_micro[name], new_micro[name]
        comparable = before.get("n") == after.get("n")
        if not comparable:
            notes.append(f"microbenchmark {name!r} sizes differ "
                         f"(n {before.get('n')} -> {after.get('n')}); "
                         "excluded from the gate")
        rows.append({
            "kind": "micro",
            "name": name,
            "metric": "median_ns_per_op",
            "old": before.get("median_ns_per_op"),
            "new": after.get("median_ns_per_op"),
            "pct": _pct(before.get("median_ns_per_op") or 0.0,
                        after.get("median_ns_per_op") or 0.0),
            "comparable": comparable,
        })

    regressions = [
        row for row in rows
        if row["comparable"] and row["pct"] is not None
        and fail_threshold is not None and row["pct"] > fail_threshold
    ]
    return {
        "rows": rows,
        "notes": notes,
        "mismatches": mismatches,
        "warnings": warnings,
        "regressions": regressions,
        "geomean": _geomean_speedups(rows),
        "failed": bool(regressions) or (strict and bool(mismatches)),
        "fail_threshold": fail_threshold,
        "strict": strict,
    }


def _geomean_speedups(rows: List[dict]) -> dict:
    """Geometric-mean old/new speedup over the comparable rows.

    Both row metrics are time-per-something (macro wall seconds, micro
    median ns/op), so ``old / new`` is a speedup factor on either kind
    and the geometric mean composes them fairly.  Returns ``{"overall",
    "count", "by_kind": {kind: {"speedup", "count"}}}`` with None
    speedups when no row of that kind is comparable.
    """
    logs: List[float] = []
    by_kind: Dict[str, List[float]] = {"macro": [], "micro": []}
    for row in rows:
        if not row["comparable"]:
            continue
        old_v, new_v = row["old"], row["new"]
        if not old_v or not new_v:
            continue
        ratio = math.log(old_v / new_v)
        logs.append(ratio)
        by_kind.setdefault(row["kind"], []).append(ratio)
    def _fold(values: List[float]) -> Optional[float]:
        return math.exp(sum(values) / len(values)) if values else None
    return {
        "overall": _fold(logs),
        "count": len(logs),
        "by_kind": {kind: {"speedup": _fold(values), "count": len(values)}
                    for kind, values in by_kind.items()},
    }


def render_comparison(result: dict) -> str:
    """Human-readable delta table for one :func:`compare_reports` result."""
    lines: List[str] = []
    rows = result["rows"]
    if rows:
        width = max(len(f"{r['kind']}:{r['name']}") for r in rows)
        lines.append(f"{'benchmark':<{width}s} {'metric':>18s} "
                     f"{'old':>12s} {'new':>12s} {'delta':>9s}")
        for row in rows:
            label = f"{row['kind']}:{row['name']}"
            old_v = "-" if row["old"] is None else f"{row['old']:.6g}"
            new_v = "-" if row["new"] is None else f"{row['new']:.6g}"
            if row["pct"] is None:
                delta = "n/a"
            else:
                delta = f"{row['pct']:+.1f}%"
            if not row["comparable"]:
                delta += " *"
            lines.append(f"{label:<{width}s} {row['metric']:>18s} "
                         f"{old_v:>12s} {new_v:>12s} {delta:>9s}")
        if any(not row["comparable"] for row in rows):
            lines.append("  (* workload drifted; excluded from the "
                         "regression gate)")
    for note in result["notes"]:
        lines.append(f"note: {note}")
    geomean = result.get("geomean") or {}
    if geomean.get("overall") is not None:
        parts = []
        for kind in ("macro", "micro"):
            block = (geomean.get("by_kind") or {}).get(kind) or {}
            if block.get("speedup") is not None:
                parts.append(f"{kind} {block['speedup']:.2f}x "
                             f"over {block['count']}")
        detail = f" ({', '.join(parts)})" if parts else ""
        lines.append(f"geometric-mean speedup: {geomean['overall']:.2f}x "
                     f"across {geomean['count']} comparable "
                     f"benchmark(s){detail}")
    threshold = result.get("fail_threshold")
    if result.get("strict") and result.get("mismatches"):
        lines.append(f"STRICT COMPARE: {len(result['mismatches'])} metadata "
                     "mismatch(es) fail the gate (see notes above)")
    if result["regressions"]:
        names = ", ".join(f"{r['kind']}:{r['name']} ({r['pct']:+.1f}%)"
                          for r in result["regressions"])
        lines.append(f"REGRESSION beyond {threshold:.1f}%: {names}")
    elif threshold is not None:
        lines.append(f"gate: no regression beyond {threshold:.1f}%")
    else:
        slow = [r for r in rows if r["comparable"] and r["pct"] is not None
                and r["pct"] > 0]
        lines.append(f"gate: warn-only (no --fail-threshold); "
                     f"{len(slow)} of {len(rows)} benchmarks slower")
    return "\n".join(lines)
