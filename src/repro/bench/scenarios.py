"""Seeded macro-scenarios: what the simulator is *for*, timed.

Each scenario is a miniature of one paper workload (names reference the
figures they sample) with every seed fixed, so the workload — event
count, packet count, flows completed — is a deterministic function of
``(scale, seed)`` and only the timings vary run to run.  The measurement
harness runs each scenario twice: a timing pass with a
:class:`~repro.telemetry.profiling.SimProfiler` attached (events/sec and
per-callback attribution) and a memory pass under :mod:`tracemalloc`
(peak allocation); identical event counts across the passes double as a
determinism check, reported in the stats.

Simulated time is accounted per scenario (summed FCTs for flow-bound
workloads, offered-load horizons for sweeps) and reported against the
timing pass as ``sim_time_ratio`` — the "how many simulated seconds per
real second" number the ROADMAP's scaling goals care about.
"""

from __future__ import annotations

import tracemalloc
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence, Tuple

from repro.sim.trace import TraceRecorder
from repro.telemetry import context as _context
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.profiling import SimProfiler

__all__ = ["MacroScenario", "MACRO_SCENARIOS", "run_macro_scenario",
           "run_macro_scenarios"]

#: Hot callbacks reported per scenario (profiler attribution).
TOP_CALLBACKS = 5


class _BenchHub:
    """Minimal ambient telemetry for benchmarking: aggregate metrics and
    a profiler, but no trace recording (tracing is benchmarked separately
    by the trace-sink microbenchmark, and would distort macro timings)."""

    def __init__(self, profile: bool = True) -> None:
        self.metrics = MetricsRegistry()
        self.profiler: Optional[SimProfiler] = SimProfiler() if profile else None
        self.trace = TraceRecorder(enabled=False)


@dataclass(frozen=True)
class MacroScenario:
    """One named, seeded macro workload."""

    name: str
    figure: str
    description: str
    #: ``runner(scale, seed) -> (sim_seconds, workload_facts)``.
    runner: Callable[[float, int], Tuple[float, Dict[str, float]]]


# ----------------------------------------------------------------------
# Scenario runners.  Each returns (simulated seconds, workload facts);
# everything inside runs under the ambient bench hub installed by
# run_macro_scenario, so simulators pick up the metrics/profiler.
# ----------------------------------------------------------------------


def _fig3_walkthrough(scale: float, seed: int):
    from repro.experiments import fig03_example
    from repro.sim.randomness import derive_seed

    repeats = max(1, round(40 * scale))
    sim_seconds = 0.0
    completed = 0
    for i in range(repeats):
        result = fig03_example.run(seed=derive_seed(seed, f"bench-fig3:{i}"))
        if result.record.fct is not None:
            sim_seconds += result.record.fct
            completed += 1
    return sim_seconds, {"flows": repeats, "completed": completed}


def _planetlab_slice(scale: float, seed: int):
    from repro.experiments.planetlab_runs import run_planetlab_trials

    n_paths = max(5, round(40 * scale))
    protocols = ("tcp", "jumpstart", "halfback")
    trials = run_planetlab_trials(n_paths=n_paths, protocols=protocols,
                                  seed=seed)
    sim_seconds = 0.0
    flows = 0
    completed = 0
    for protocol in trials.protocols():
        for record in trials.collector(protocol).records:
            flows += 1
            if record.fct is not None:
                sim_seconds += record.fct
                completed += 1
    return sim_seconds, {"paths": n_paths, "flows": flows,
                         "completed": completed}


def _utilization_sweep(scale: float, seed: int):
    from repro.experiments.fig12_utilization import sweep_protocols

    protocols = ("tcp", "halfback")
    utilizations = (0.2, 0.5, 0.8)
    duration = max(1.5, 5.0 * scale)
    drain = 10.0
    sweep = sweep_protocols(protocols, utilizations=utilizations,
                            duration=duration, seed=seed, n_pairs=8,
                            drain_time=drain)
    sim_seconds = (duration + drain) * len(utilizations) * len(protocols)
    flows = sum(1 for curve in sweep.points.values() for _ in curve)
    return sim_seconds, {"sweep_points": flows,
                         "feasible_tcp": sweep.feasible.get("tcp", 0.0),
                         "feasible_halfback":
                             sweep.feasible.get("halfback", 0.0)}


def _web_slice(scale: float, seed: int):
    from repro.experiments import fig16_web

    protocols = ("tcp", "halfback")
    utilizations = (0.2, 0.4)
    duration = max(2.0, 6.0 * scale)
    result = fig16_web.run(protocols=protocols, utilizations=utilizations,
                           duration=duration, seed=seed, n_pairs=8)
    # Each cell offers ``duration`` seconds of load plus a drain horizon.
    sim_seconds = duration * len(protocols) * len(utilizations)
    mean_tcp = (sum(result.curves["tcp"]) / len(result.curves["tcp"])
                if result.curves.get("tcp") else 0.0)
    return sim_seconds, {"cells": len(protocols) * len(utilizations),
                         "mean_response_tcp": mean_tcp}


MACRO_SCENARIOS: Dict[str, MacroScenario] = {
    scenario.name: scenario for scenario in (
        MacroScenario(
            name="fig3_walkthrough",
            figure="Fig. 3",
            description="repeated 10-segment Halfback walk-throughs "
                        "(trace-heavy tiny flows)",
            runner=_fig3_walkthrough,
        ),
        MacroScenario(
            name="planetlab_slice",
            figure="Fig. 6",
            description="100 KB flows over synthetic Internet paths, "
                        "3 protocols (PlanetLab slice)",
            runner=_planetlab_slice,
        ),
        MacroScenario(
            name="utilization_sweep",
            figure="Fig. 12",
            description="all-short-flow offered-load sweep, "
                        "tcp vs halfback at 20/50/80%",
            runner=_utilization_sweep,
        ),
        MacroScenario(
            name="web_slice",
            figure="Fig. 16",
            description="web page loads over a browser connection pool "
                        "at 20/40% utilization",
            runner=_web_slice,
        ),
    )
}


def _instrumented_pass(scenario: MacroScenario, scale: float, seed: int,
                       profile: bool):
    """One scenario execution under a fresh bench hub.

    Returns ``(hub, wall_seconds, sim_seconds, workload_facts)``.
    """
    import time

    hub = _BenchHub(profile=profile)
    with _context.activated(hub):
        started = time.perf_counter()
        sim_seconds, facts = scenario.runner(scale, seed)
        wall = time.perf_counter() - started
    return hub, wall, sim_seconds, facts


def run_macro_scenario(name: str, scale: float = 1.0, seed: int = 42,
                       measure_memory: bool = True) -> Dict[str, object]:
    """Measure one macro scenario; returns its JSON-ready stats block."""
    scenario = MACRO_SCENARIOS[name]

    hub, wall, sim_seconds, facts = _instrumented_pass(
        scenario, scale, seed, profile=True)
    profiler = hub.profiler
    assert profiler is not None
    # "events" is the *logical* event count: events the loop fired plus
    # events the batched link datapath absorbed into train plans
    # (repro.net.link).  The sum equals the unbatched run's fired count
    # exactly, so events/sec stays comparable across baselines recorded
    # before and after batching — and the ratio to an unbatched baseline
    # is the true wall-clock speedup.
    fired = profiler.events
    absorbed = int(hub.metrics.counter("scheduler.events_absorbed").value)
    events = fired + absorbed
    packets = int(hub.metrics.counter("link.tx_packets").value)

    peak_kb: Optional[float] = None
    deterministic = True
    if measure_memory:
        tracemalloc.start()
        try:
            hub2, _, _, _ = _instrumented_pass(
                scenario, scale, seed, profile=True)
            _, peak_bytes = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        peak_kb = peak_bytes / 1024.0
        assert hub2.profiler is not None
        packets2 = int(hub2.metrics.counter("link.tx_packets").value)
        absorbed2 = int(
            hub2.metrics.counter("scheduler.events_absorbed").value)
        deterministic = (hub2.profiler.events + absorbed2 == events
                         and packets2 == packets)

    hot = sorted(profiler.per_kind.items(), key=lambda kv: kv[1].wall,
                 reverse=True)[:TOP_CALLBACKS]
    return {
        "figure": scenario.figure,
        "description": scenario.description,
        "scale": scale,
        "seed": seed,
        "wall_s": wall,
        "wall_in_runs_s": profiler.wall_in_runs,
        "events": events,
        "events_fired": fired,
        "events_absorbed": absorbed,
        "packets": packets,
        "events_per_sec": events / wall if wall > 0 else 0.0,
        "packets_per_sec": packets / wall if wall > 0 else 0.0,
        "sim_time_s": sim_seconds,
        "sim_time_ratio": sim_seconds / wall if wall > 0 else 0.0,
        "peak_mem_kb": peak_kb,
        "deterministic": deterministic,
        "max_heap_depth": profiler.max_heap_depth,
        "hot_callbacks": [
            {"callback": name_, "count": stats.count, "wall_s": stats.wall}
            for name_, stats in hot
        ],
        "workload": facts,
    }


def run_macro_scenarios(names: Optional[Sequence[str]] = None,
                        scale: float = 1.0, seed: int = 42,
                        measure_memory: bool = True,
                        progress: Optional[Callable[[str], None]] = None
                        ) -> Dict[str, Dict[str, object]]:
    """Measure several scenarios; ``names=None`` runs the full catalog."""
    selected = list(names) if names is not None else list(MACRO_SCENARIOS)
    out: Dict[str, Dict[str, object]] = {}
    for name in selected:
        if name not in MACRO_SCENARIOS:
            raise KeyError(f"unknown bench scenario {name!r}; "
                           f"known: {', '.join(sorted(MACRO_SCENARIOS))}")
        if progress is not None:
            progress(name)
        out[name] = run_macro_scenario(name, scale=scale, seed=seed,
                                       measure_memory=measure_memory)
    return out
