"""Microbenchmarks of the simulator's known hot paths.

Each benchmark times one tight loop over a single subsystem — the event
queue, the bottleneck queues (drop-tail and RED), the sender ACK
processing path, and trace-sink serialization — so a macro regression
can be localized ("events/sec fell because *pop* got slower") without
re-running a profiler.  State setup happens outside the timed section;
only the hot loop is measured.

The harness runs ``warmup`` discarded passes then ``repetitions`` timed
passes and reports min / median / mean nanoseconds per operation; *min*
is the steady-state number (least scheduler noise), *median* is what the
regression gate compares.
"""

from __future__ import annotations

import os
import random
import statistics
import tempfile
import time
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence, Tuple

__all__ = ["MicroBenchmark", "MICRO_BENCHMARKS", "run_micro_benchmark",
           "run_micro_benchmarks"]


@dataclass(frozen=True)
class MicroBenchmark:
    """One named hot-path benchmark.

    ``runner(n, seed)`` performs roughly ``n`` operations and returns
    ``(elapsed_seconds, ops_performed)`` with only the hot loop timed.
    """

    name: str
    description: str
    runner: Callable[[int, int], Tuple[float, int]]
    default_n: int


# ----------------------------------------------------------------------
# Hot-path loops
# ----------------------------------------------------------------------


def _scheduler_push_pop(n: int, seed: int) -> Tuple[float, int]:
    from repro.sim.event import Event
    from repro.sim.scheduler import EventScheduler

    rng = random.Random(seed)
    times = [rng.random() for _ in range(n)]
    scheduler = EventScheduler()
    callback = (lambda: None)
    started = time.perf_counter()
    for t in times:
        scheduler.push(Event(t, callback))
    while scheduler.pop() is not None:
        pass
    return time.perf_counter() - started, 2 * n


def _scheduler_cancel_churn(n: int, seed: int) -> Tuple[float, int]:
    """Timer-style churn: every second event is cancelled after push —
    the pattern RTO timers produce, and what heap compaction targets."""
    from repro.sim.event import Event
    from repro.sim.scheduler import EventScheduler

    rng = random.Random(seed)
    times = [rng.random() for _ in range(n)]
    scheduler = EventScheduler()
    callback = (lambda: None)
    started = time.perf_counter()
    for i, t in enumerate(times):
        event = Event(t, callback)
        scheduler.push(event)
        if i % 2:
            event.cancel()
            scheduler.note_cancelled()
    while scheduler.pop() is not None:
        pass
    return time.perf_counter() - started, 2 * n


def _queue_ops(queue_factory, n: int, seed: int) -> Tuple[float, int]:
    from repro.net.packet import Packet, PacketType

    packets = [Packet(src="a", dst="b", flow_id=1, kind=PacketType.DATA,
                      size=1500, seq=i) for i in range(n)]
    queue = queue_factory(seed)
    ops = 0
    started = time.perf_counter()
    for i, packet in enumerate(packets):
        queue.enqueue(packet)
        ops += 1
        if i % 3 == 0:
            queue.dequeue()
            ops += 1
    while queue.dequeue() is not None:
        ops += 1
    return time.perf_counter() - started, ops


def _queue_droptail(n: int, seed: int) -> Tuple[float, int]:
    from repro.net.queue import DropTailQueue

    # 64 KB capacity so the loop exercises both admits and tail drops.
    return _queue_ops(lambda s: DropTailQueue(capacity_bytes=64_000), n, seed)


def _queue_red(n: int, seed: int) -> Tuple[float, int]:
    from repro.net.queue import REDQueue

    return _queue_ops(
        lambda s: REDQueue(capacity_bytes=64_000, rng=random.Random(s)),
        n, seed)


def _sender_ack_processing(n: int, seed: int) -> Tuple[float, int]:
    """Drive a real TCP sender's ACK path with synthetic in-order ACKs.

    The sender transmits into the (never-run) network as the window
    opens, so each timed iteration covers scoreboard advance, RTT/RTO
    bookkeeping, cwnd growth, timer restart and ``send_window`` — the
    per-ACK cost an ACK-clocked flow pays.
    """
    from repro.net.packet import Packet, PacketType
    from repro.net.topology import access_network
    from repro.protocols.registry import create_sender
    from repro.sim.simulator import Simulator
    from repro.transport.flow import FlowRecord, FlowSpec, next_flow_id
    from repro.units import MSS, gbps, kb, ms

    sim = Simulator(seed=seed)
    net = access_network(sim, n_pairs=1, bottleneck_rate=gbps(10),
                         rtt=ms(10), buffer_bytes=kb(1000))
    sender_host, receiver_host = net.pair(0)
    spec = FlowSpec(next_flow_id(), sender_host.name, receiver_host.name,
                    size=n * MSS, protocol="tcp")
    sender = create_sender(sim, sender_host, spec, record=FlowRecord(spec))
    sender.start()
    sender.on_packet(Packet(src=receiver_host.name, dst=sender_host.name,
                            flow_id=spec.flow_id, kind=PacketType.SYN_ACK,
                            size=40))
    segments = spec.n_segments
    started = time.perf_counter()
    for ack in range(1, segments + 1):
        sender.on_packet(Packet(src=receiver_host.name, dst=sender_host.name,
                                flow_id=spec.flow_id, kind=PacketType.ACK,
                                size=40, ack=ack))
    return time.perf_counter() - started, segments


def _scoreboard_array_ack(n: int, seed: int) -> Tuple[float, int]:
    """Array-backed scoreboard bookkeeping in isolation.

    Drives :class:`~repro.transport.sacks.SendScoreboard` directly —
    ``mark_sent`` stamping the send-time column, then one cumulative
    ACK per segment (every fourth carrying a small SACK block) stamping
    the ack-time column — so the struct-of-arrays state machine is
    timed without any sender/window logic around it.  Ops = sends plus
    ACKs applied.
    """
    from repro.transport.sacks import SendScoreboard

    scoreboard = SendScoreboard(n)
    tick = 1e-4
    started = time.perf_counter()
    for seq in range(n):
        scoreboard.mark_sent(seq, time=seq * tick)
    for cum in range(1, n + 1):
        if cum % 4 == 0 and cum + 2 <= n:
            scoreboard.on_ack(cum, ((cum + 1, cum + 2),),
                              now=(n + cum) * tick)
        else:
            scoreboard.on_ack(cum, now=(n + cum) * tick)
    elapsed = time.perf_counter() - started
    if scoreboard.cum_ack != n:  # pragma: no cover - sanity guard
        raise RuntimeError(f"scoreboard benchmark did not complete: "
                           f"cum_ack {scoreboard.cum_ack}/{n}")
    return elapsed, 2 * n


class _SinkNode:
    """Minimal delivery target for the link benchmark (counts packets)."""

    name = "sink"

    def __init__(self) -> None:
        self.received = 0

    def receive(self, packet) -> None:
        self.received += 1


def _link_drain(n: int, seed: int, batched: bool) -> Tuple[float, int]:
    """Drive ``n`` packets through one fast link into a sink endpoint
    and time the whole drain; ops = packets delivered."""
    from repro.net.link import Link, batching_enabled, set_batching
    from repro.net.packet import Packet, PacketType
    from repro.sim.simulator import Simulator
    from repro.units import gbps, us

    previous = batching_enabled()
    set_batching(batched)
    try:
        sim = Simulator(seed=seed)
        sink = _SinkNode()
        link = Link(sim, "bench->sink", sink, rate=gbps(10), delay=us(10))
        packets = [Packet(src="bench", dst="sink", flow_id=1,
                          kind=PacketType.DATA, size=1500, seq=i)
                   for i in range(n)]
        started = time.perf_counter()
        for packet in packets:
            link.send(packet)
        sim.run()
        elapsed = time.perf_counter() - started
    finally:
        set_batching(previous)
    if sink.received != n:  # pragma: no cover - sanity guard
        raise RuntimeError(f"link benchmark lost packets: "
                           f"{sink.received}/{n} delivered")
    return elapsed, n


def _link_deliver(n: int, seed: int) -> Tuple[float, int]:
    """Per-packet link datapath: admit, serialize, propagate, deliver.

    ``Link._deliver`` is the hottest callback in macro runs (every
    packet pays the chain once per hop), so this drives ``n`` packets
    through one fast link into a sink endpoint and times the whole
    drain — covering ``_admit``, the per-packet serialization events,
    ``_deliver`` and the events they schedule.  Train batching is
    disabled for the duration, so this stays the *per-packet reference
    cost* (directly comparable across trajectory files; the batched
    plan is measured by ``link_deliver_train``).  Ops = packets
    delivered.
    """
    return _link_drain(n, seed, batched=False)


def _link_deliver_train(n: int, seed: int) -> Tuple[float, int]:
    """Batched link datapath: one train plan per back-to-back run.

    Identical workload to ``link_deliver``, but with packet-train
    batching on: ``Link._start_train`` pops the whole backlog, computes
    every serialization/delivery instant analytically, and schedules
    only the delivery events.  ``link_deliver / link_deliver_train`` is
    therefore the datapath batching speedup per delivered packet.
    Ops = packets delivered.
    """
    return _link_drain(n, seed, batched=True)


def _trace_sink_serialization(n: int, seed: int) -> Tuple[float, int]:
    from repro.sim.trace import TraceRecord
    from repro.telemetry.export import JsonlTraceSink

    rng = random.Random(seed)
    records = [
        TraceRecord(rng.random() * 10.0, "sender.done", "bench",
                    {"flow": i, "fct": round(rng.random(), 6),
                     "retx": i % 3, "proactive": i % 5})
        for i in range(n)
    ]
    with tempfile.TemporaryDirectory(prefix="repro-bench-") as tmp:
        sink = JsonlTraceSink(os.path.join(tmp, "trace.jsonl"),
                              flush_every=1000)
        started = time.perf_counter()
        for record in records:
            sink.write(record)
        sink.close()
        elapsed = time.perf_counter() - started
    return elapsed, n


def _logical_events(sim) -> int:
    """Logical event count of a finished run: events the loop fired plus
    events the batched link datapath absorbed into train plans
    (:mod:`repro.net.link`).  Equal to the unbatched run's ``events_run``
    exactly, so paired micros (audit on/off, chaos on/off, ...) report
    comparable per-event costs even when only one side batches."""
    return sim.events_run + sim.events_absorbed


def _halfback_flow(n: int, seed: int, audited: bool) -> Tuple[float, int]:
    """One end-to-end Halfback flow of ``n`` segments; ops = sim events.

    The audited variant runs the same flow under an
    :class:`~repro.audit.session.AuditSession` (lineage events on, all
    invariant checkers live), so ``flow_audit_on / flow_audit_off`` is
    the auditor's per-event cost multiplier.
    """
    import contextlib

    from repro.net.topology import access_network
    from repro.protocols.registry import create_sender
    from repro.sim.simulator import Simulator
    from repro.transport.flow import FlowRecord, FlowSpec, next_flow_id
    from repro.transport.receiver import Receiver
    from repro.units import MSS, kb, mbps, ms

    if audited:
        from repro.audit import AuditSession

        session = AuditSession()
    else:
        session = contextlib.nullcontext()
    with session:
        sim = Simulator(seed=seed)
        net = access_network(sim, n_pairs=1, bottleneck_rate=mbps(50),
                             rtt=ms(20), buffer_bytes=kb(115))
        sender_host, receiver_host = net.pair(0)
        spec = FlowSpec(next_flow_id(), sender_host.name, receiver_host.name,
                        size=n * MSS, protocol="halfback")
        Receiver(sim, receiver_host, spec.flow_id)
        sender = create_sender(sim, sender_host, spec,
                               record=FlowRecord(spec))
        sender.start()
        started = time.perf_counter()
        sim.run(until=300.0)
        elapsed = time.perf_counter() - started
    return elapsed, _logical_events(sim)


def _flow_audit_off(n: int, seed: int) -> Tuple[float, int]:
    return _halfback_flow(n, seed, audited=False)


def _flow_audit_on(n: int, seed: int) -> Tuple[float, int]:
    return _halfback_flow(n, seed, audited=True)


def _halfback_flow_provenance(n: int, seed: int,
                              provenance: bool) -> Tuple[float, int]:
    """One end-to-end Halfback flow with/without ``sched.exec``
    provenance recording; ops = sim events.

    The off variant is the instrumented-but-dormant hot path (the
    per-event ``if prov`` check plus the per-schedule parent-stamp
    guard) — the configuration every non-hb run pays, gated at <2%
    against the pre-provenance baseline.  The on variant streams one
    provenance record per executed event into an enabled recorder (ring
    mode, sink-free) and is the hb observatory's cost multiplier.
    """
    from repro.net.topology import access_network
    from repro.protocols.registry import create_sender
    from repro.sim.simulator import Simulator
    from repro.sim.trace import TraceRecorder
    from repro.transport.flow import FlowRecord, FlowSpec, next_flow_id
    from repro.transport.receiver import Receiver
    from repro.units import MSS, kb, mbps, ms

    trace = (TraceRecorder(enabled=True, provenance=True, max_records=4000)
             if provenance else None)
    sim = Simulator(seed=seed, trace=trace)
    net = access_network(sim, n_pairs=1, bottleneck_rate=mbps(50),
                         rtt=ms(20), buffer_bytes=kb(115))
    sender_host, receiver_host = net.pair(0)
    spec = FlowSpec(next_flow_id(), sender_host.name, receiver_host.name,
                    size=n * MSS, protocol="halfback")
    Receiver(sim, receiver_host, spec.flow_id)
    sender = create_sender(sim, sender_host, spec,
                           record=FlowRecord(spec))
    sender.start()
    started = time.perf_counter()
    sim.run(until=300.0)
    elapsed = time.perf_counter() - started
    return elapsed, _logical_events(sim)


def _sched_provenance_off(n: int, seed: int) -> Tuple[float, int]:
    return _halfback_flow_provenance(n, seed, provenance=False)


def _sched_provenance_on(n: int, seed: int) -> Tuple[float, int]:
    return _halfback_flow_provenance(n, seed, provenance=True)


def _halfback_flow_chaos(n: int, seed: int,
                         profile: Optional[str]) -> Tuple[float, int]:
    """One end-to-end Halfback flow, optionally under a chaos profile.

    ``flow_chaos_on / flow_chaos_off`` is the impairment pipeline's
    per-event cost multiplier; the off variant pays exactly one falsy
    ``link._impairments`` check per packet hop — the cost the <2%
    overhead gate bounds.
    """
    from repro.net.topology import access_network
    from repro.protocols.registry import create_sender
    from repro.sim.simulator import Simulator
    from repro.transport.flow import FlowRecord, FlowSpec, next_flow_id
    from repro.transport.receiver import Receiver
    from repro.units import MSS, kb, mbps, ms

    sim = Simulator(seed=seed)
    net = access_network(sim, n_pairs=1, bottleneck_rate=mbps(50),
                         rtt=ms(20), buffer_bytes=kb(115))
    if profile is not None:
        from repro.chaos import get_profile

        get_profile(profile, seed=seed).apply(net)
    sender_host, receiver_host = net.pair(0)
    spec = FlowSpec(next_flow_id(), sender_host.name, receiver_host.name,
                    size=n * MSS, protocol="halfback")
    Receiver(sim, receiver_host, spec.flow_id)
    sender = create_sender(sim, sender_host, spec, record=FlowRecord(spec))
    sender.start()
    started = time.perf_counter()
    sim.run(until=300.0)
    return time.perf_counter() - started, _logical_events(sim)


def _flow_chaos_off(n: int, seed: int) -> Tuple[float, int]:
    return _halfback_flow_chaos(n, seed, profile=None)


def _flow_chaos_on(n: int, seed: int) -> Tuple[float, int]:
    return _halfback_flow_chaos(n, seed, profile="wifi-bursty")


def _sketch_insert(n: int, seed: int) -> Tuple[float, int]:
    """Per-value cost of the mergeable quantile sketch — the price every
    completed flow pays when streaming aggregation is on."""
    from repro.obs.sketch import QuantileSketch

    rng = random.Random(seed)
    # FCT-shaped values: tenths of a millisecond to tens of seconds.
    values = [rng.lognormvariate(-3.0, 2.0) for _ in range(n)]
    sketch = QuantileSketch()
    started = time.perf_counter()
    for value in values:
        sketch.insert(value)
    return time.perf_counter() - started, n


def _sketch_merge(n: int, seed: int) -> Tuple[float, int]:
    """Cost of folding shard sketches together (the `--jobs N` reduce
    step); ops = shard merges performed."""
    from repro.obs.sketch import QuantileSketch

    rng = random.Random(seed)
    n_shards = 32
    shards = []
    for _ in range(n_shards):
        shard = QuantileSketch()
        for _ in range(2_000):
            shard.insert(rng.lognormvariate(-3.0, 2.0))
        shards.append(shard)
    merges = 0
    started = time.perf_counter()
    while merges < n:
        target = QuantileSketch()
        for shard in shards:
            target.merge(shard)
            merges += 1
    return time.perf_counter() - started, merges


def _halfback_flow_obs(n: int, seed: int, observed: bool) -> Tuple[float, int]:
    """One end-to-end Halfback flow via the experiment runner, with the
    streaming observatory on or off.

    The on variant activates a progress plane (rendering disabled) with
    a live shard reporter and streams the finished record into a
    :class:`~repro.obs.aggregate.StreamingFlowAggregator`, so
    ``flow_obs_on / flow_obs_off`` is the observatory's per-event cost
    multiplier — and the off variant pays exactly the ambient-reporter
    ``None`` check the <2% overhead gate bounds.
    """
    import contextlib

    from repro.experiments.runner import ScheduledFlow, TrafficRunner
    from repro.net.topology import access_network
    from repro.sim.simulator import Simulator
    from repro.units import MSS, kb, mbps, ms

    if observed:
        from repro.obs import progress as progress_mod
        from repro.obs.aggregate import StreamingFlowAggregator

        plane = progress_mod.ProgressPlane(stream=None)
        session = progress_mod.reporting(
            progress_mod.ShardReporter(0, plane.apply))
    else:
        session = contextlib.nullcontext()
    with session:
        sim = Simulator(seed=seed)
        net = access_network(sim, n_pairs=1, bottleneck_rate=mbps(50),
                             rtt=ms(20), buffer_bytes=kb(115))
        runner = TrafficRunner(sim, net)
        runner.schedule([ScheduledFlow(time=0.0, size=n * MSS,
                                       protocol="halfback")])
        started = time.perf_counter()
        runner.run()
        if observed:
            StreamingFlowAggregator().observe_all(runner.drain_records())
        elapsed = time.perf_counter() - started
    return elapsed, _logical_events(sim)


def _flow_obs_off(n: int, seed: int) -> Tuple[float, int]:
    return _halfback_flow_obs(n, seed, observed=False)


def _flow_obs_on(n: int, seed: int) -> Tuple[float, int]:
    return _halfback_flow_obs(n, seed, observed=True)


def _halfback_flow_breakdown(n: int, seed: int,
                             observed: bool) -> Tuple[float, int]:
    """One runner flow with FCT attribution on or off.

    The on variant runs under a :class:`~repro.obs.critical.
    BreakdownSession` (lineage trace on, span builder classifying every
    packet event), so ``flow_breakdown_on / flow_breakdown_off`` is the
    attribution pipeline's per-event cost multiplier — and the off
    variant pays exactly one falsy ``_sessions`` check per completed
    flow, the cost the <2% overhead gate bounds.
    """
    import contextlib

    from repro.experiments.runner import ScheduledFlow, TrafficRunner
    from repro.net.topology import access_network
    from repro.sim.simulator import Simulator
    from repro.units import MSS, kb, mbps, ms

    if observed:
        from repro.obs.critical import BreakdownSession

        session = BreakdownSession()
    else:
        session = contextlib.nullcontext()
    with session:
        sim = Simulator(seed=seed)
        net = access_network(sim, n_pairs=1, bottleneck_rate=mbps(50),
                             rtt=ms(20), buffer_bytes=kb(115))
        runner = TrafficRunner(sim, net)
        runner.schedule([ScheduledFlow(time=0.0, size=n * MSS,
                                       protocol="halfback")])
        started = time.perf_counter()
        runner.run()
        elapsed = time.perf_counter() - started
    if observed and not session.aggregate.flows:  # pragma: no cover
        raise RuntimeError("breakdown benchmark observed no flows")
    return elapsed, _logical_events(sim)


def _flow_breakdown_off(n: int, seed: int) -> Tuple[float, int]:
    return _halfback_flow_breakdown(n, seed, observed=False)


def _flow_breakdown_on(n: int, seed: int) -> Tuple[float, int]:
    return _halfback_flow_breakdown(n, seed, observed=True)


MICRO_BENCHMARKS: Dict[str, MicroBenchmark] = {
    bench.name: bench for bench in (
        MicroBenchmark("scheduler_push_pop",
                       "EventScheduler.push then drain via pop",
                       _scheduler_push_pop, default_n=50_000),
        MicroBenchmark("scheduler_cancel_churn",
                       "push with 50% lazy cancellation (RTO-timer churn)",
                       _scheduler_cancel_churn, default_n=50_000),
        MicroBenchmark("queue_droptail",
                       "DropTailQueue enqueue/dequeue with tail drops",
                       _queue_droptail, default_n=50_000),
        MicroBenchmark("queue_red",
                       "REDQueue enqueue/dequeue with probabilistic AQM",
                       _queue_red, default_n=50_000),
        MicroBenchmark("sender_ack_processing",
                       "TCP sender per-ACK bookkeeping + window send",
                       _sender_ack_processing, default_n=4_000),
        MicroBenchmark("scoreboard_array_ack",
                       "array-backed SendScoreboard mark_sent + on_ack "
                       "(struct-of-arrays columns, no sender around it)",
                       _scoreboard_array_ack, default_n=20_000),
        MicroBenchmark("link_deliver",
                       "per-packet link datapath: admit, serialize, "
                       "deliver (train batching disabled)",
                       _link_deliver, default_n=20_000),
        MicroBenchmark("link_deliver_train",
                       "batched link datapath: one train plan per "
                       "back-to-back run (same workload as link_deliver)",
                       _link_deliver_train, default_n=20_000),
        MicroBenchmark("trace_sink_serialization",
                       "JSONL trace-sink write of schema-shaped records",
                       _trace_sink_serialization, default_n=20_000),
        MicroBenchmark("flow_audit_off",
                       "end-to-end Halfback flow, auditing off (baseline)",
                       _flow_audit_off, default_n=1_000),
        MicroBenchmark("flow_audit_on",
                       "end-to-end Halfback flow under the invariant "
                       "auditor (lineage + checkers)",
                       _flow_audit_on, default_n=1_000),
        MicroBenchmark("sched_provenance_off",
                       "end-to-end Halfback flow, provenance dormant "
                       "(default hot path)",
                       _sched_provenance_off, default_n=1_000),
        MicroBenchmark("sched_provenance_on",
                       "end-to-end Halfback flow emitting sched.exec "
                       "provenance per event",
                       _sched_provenance_on, default_n=1_000),
        MicroBenchmark("flow_chaos_off",
                       "end-to-end Halfback flow, empty impairment "
                       "pipeline (chaos-off fast path)",
                       _flow_chaos_off, default_n=1_000),
        MicroBenchmark("flow_chaos_on",
                       "end-to-end Halfback flow under the wifi-bursty "
                       "chaos profile",
                       _flow_chaos_on, default_n=1_000),
        MicroBenchmark("sketch_insert",
                       "QuantileSketch.insert of FCT-shaped values",
                       _sketch_insert, default_n=200_000),
        MicroBenchmark("sketch_merge",
                       "QuantileSketch.merge across 32 populated shards",
                       _sketch_merge, default_n=2_000),
        MicroBenchmark("flow_obs_off",
                       "runner flow, streaming observatory off (ambient "
                       "no-op fast path)",
                       _flow_obs_off, default_n=1_000),
        MicroBenchmark("flow_obs_on",
                       "runner flow with live shard reporter + streaming "
                       "FCT aggregation",
                       _flow_obs_on, default_n=1_000),
        MicroBenchmark("flow_breakdown_off",
                       "runner flow, FCT attribution off (ambient "
                       "no-op fast path)",
                       _flow_breakdown_off, default_n=1_000),
        MicroBenchmark("flow_breakdown_on",
                       "runner flow under a BreakdownSession (lineage "
                       "trace + critical-path span builder)",
                       _flow_breakdown_on, default_n=1_000),
    )
}


def run_micro_benchmark(name: str, repetitions: int = 5, warmup: int = 1,
                        n: Optional[int] = None, seed: int = 42
                        ) -> Dict[str, object]:
    """Run one microbenchmark; returns its JSON-ready stats block."""
    bench = MICRO_BENCHMARKS[name]
    ops_n = n if n is not None else bench.default_n
    for _ in range(max(0, warmup)):
        bench.runner(ops_n, seed)
    per_op_ns = []
    ops_seen = None
    for _ in range(max(1, repetitions)):
        elapsed, ops = bench.runner(ops_n, seed)
        ops_seen = ops
        per_op_ns.append((elapsed / ops) * 1e9 if ops else 0.0)
    return {
        "description": bench.description,
        "n": ops_n,
        "ops": ops_seen,
        "repetitions": max(1, repetitions),
        "warmup": max(0, warmup),
        "min_ns_per_op": min(per_op_ns),
        "median_ns_per_op": statistics.median(per_op_ns),
        "mean_ns_per_op": statistics.fmean(per_op_ns),
    }


def run_micro_benchmarks(names: Optional[Sequence[str]] = None,
                         repetitions: int = 5, warmup: int = 1,
                         seed: int = 42,
                         progress: Optional[Callable[[str], None]] = None
                         ) -> Dict[str, Dict[str, object]]:
    """Run several microbenchmarks; ``names=None`` runs the catalog."""
    selected = list(names) if names is not None else list(MICRO_BENCHMARKS)
    out: Dict[str, Dict[str, object]] = {}
    for name in selected:
        if name not in MICRO_BENCHMARKS:
            raise KeyError(f"unknown microbenchmark {name!r}; "
                           f"known: {', '.join(sorted(MICRO_BENCHMARKS))}")
        if progress is not None:
            progress(name)
        out[name] = run_micro_benchmark(name, repetitions=repetitions,
                                        warmup=warmup, seed=seed)
    return out
