"""The performance observatory: ``python -m repro.bench``.

Simulator throughput is the gate on every scaling goal in the ROADMAP —
paper-scale PlanetLab sweeps, data-center workloads, millions of flows —
so this package makes speed a *tracked, regression-gated number* instead
of an anecdote.  Four parts:

* :mod:`~repro.bench.scenarios` — seeded macro-scenarios (the Fig. 3
  walk-through, a Fig. 6-style PlanetLab slice, a Fig. 12-style
  utilization sweep, a Fig. 16-style web-workload slice) measured for
  wall-clock, events/sec, packets/sec, simulated-time/real-time ratio
  and peak memory;
* :mod:`~repro.bench.micro` — microbenchmarks of the known hot paths
  (event queue, bottleneck queues + AQM, sender ACK processing, trace
  serialization) with warmup and min/median over repetitions;
* :mod:`~repro.bench.report` — the schema-versioned ``BENCH_<v>.json``
  document plus the ``--compare`` delta/regression-gate logic;
* :mod:`~repro.bench.cli` — the command line that ties it together and
  seeds the benchmark trajectory every perf PR is judged against.

Workloads are deterministic (fixed seeds): two runs on the same commit
report identical event/packet counts and differ only in timings, so a
``--compare`` delta is always a statement about *speed*, not about the
workload drifting.
"""

from repro.bench.machine import machine_metadata
from repro.bench.micro import MICRO_BENCHMARKS, run_micro_benchmarks
from repro.bench.report import (
    SCHEMA_VERSION,
    bench_filename,
    build_report,
    compare_reports,
    load_report,
    render_comparison,
    validate_report,
    write_report,
)
from repro.bench.scale import DEFAULT_SCALE, QUICK_SCALE, bench_scale
from repro.bench.scenarios import (
    MACRO_SCENARIOS,
    run_macro_scenario,
    run_macro_scenarios,
)

__all__ = [
    "DEFAULT_SCALE",
    "MACRO_SCENARIOS",
    "MICRO_BENCHMARKS",
    "QUICK_SCALE",
    "SCHEMA_VERSION",
    "bench_filename",
    "bench_scale",
    "build_report",
    "compare_reports",
    "load_report",
    "machine_metadata",
    "render_comparison",
    "run_macro_scenario",
    "run_macro_scenarios",
    "run_micro_benchmarks",
    "validate_report",
    "write_report",
]
