"""``python -m repro.bench`` — run the observatory, gate regressions.

Typical uses::

    # Full run at the ambient scale; writes BENCH_1.json at the repo root.
    python -m repro.bench

    # CI smoke: small scale, fewer repetitions, still schema-complete.
    python -m repro.bench --quick

    # Regression gate: run, then compare against a committed baseline.
    python -m repro.bench --quick --compare BENCH_1.json --fail-threshold 10

    # Compare two existing trajectory files without running anything.
    python -m repro.bench --compare OLD.json --current NEW.json

    # Hot-path attribution: cProfile the macro scenarios -> profile.json.
    python -m repro.bench --skip-micro --profile

Exit codes: 0 success, 1 regression beyond ``--fail-threshold``,
2 bad arguments or invalid report files.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Optional

from repro.bench.machine import machine_metadata
from repro.bench.micro import MICRO_BENCHMARKS, run_micro_benchmarks
from repro.bench.report import (
    bench_filename,
    build_profile_document,
    build_report,
    compare_reports,
    load_report,
    render_comparison,
    write_report,
)
from repro.bench.scale import QUICK_SCALE, bench_scale
from repro.bench.scenarios import MACRO_SCENARIOS, run_macro_scenarios

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.bench",
        description="Performance observatory: seeded macro-scenarios, "
                    "hot-path microbenchmarks, and a BENCH_*.json "
                    "trajectory with a --compare regression gate.",
    )
    parser.add_argument("--quick", action="store_true",
                        help="CI-smoke mode: reduced scale "
                             f"({QUICK_SCALE}) and fewer repetitions")
    parser.add_argument("--scale", type=float, default=None,
                        help="workload scale (default: HALFBACK_BENCH_SCALE "
                             "env or 1.0; --quick implies "
                             f"{QUICK_SCALE} unless given)")
    parser.add_argument("--seed", type=int, default=42,
                        help="master seed for every scenario workload")
    parser.add_argument("--out", default=bench_filename(), metavar="PATH",
                        help="output document (default: %(default)s)")
    parser.add_argument("--scenarios", default=None, metavar="NAMES",
                        help="comma-separated macro scenario subset "
                             f"(known: {', '.join(sorted(MACRO_SCENARIOS))})")
    parser.add_argument("--skip-macro", action="store_true",
                        help="skip the macro scenarios")
    parser.add_argument("--skip-micro", action="store_true",
                        help="skip the microbenchmarks")
    parser.add_argument("--repetitions", type=int, default=None,
                        help="micro repetitions (default 5; --quick 3)")
    parser.add_argument("--warmup", type=int, default=1,
                        help="discarded micro warmup passes (default 1)")
    parser.add_argument("--no-mem", action="store_true",
                        help="skip the tracemalloc memory pass "
                             "(peak_mem_kb becomes null)")
    parser.add_argument("--profile", nargs="?", const="profile.json",
                        default=None, metavar="PATH",
                        help="additionally cProfile each macro scenario and "
                             "write per-function attribution "
                             "(default: profile.json)")
    parser.add_argument("--compare", default=None, metavar="OLD.json",
                        help="compare this run (or --current) against a "
                             "previous trajectory document")
    parser.add_argument("--current", default=None, metavar="NEW.json",
                        help="with --compare: use this existing document "
                             "instead of running benchmarks")
    parser.add_argument("--fail-threshold", type=float, default=None,
                        metavar="PCT",
                        help="with --compare: exit 1 when any comparable "
                             "benchmark slowed by more than PCT percent "
                             "(omit for warn-only)")
    parser.add_argument("--strict-compare", action="store_true",
                        help="with --compare: fail (exit 1) on hard "
                             "metadata mismatches — machine fingerprint, "
                             "python version/implementation, or workload "
                             "scale — instead of just warning (benign "
                             "drift like cpu_count or a platform "
                             "patchlevel stays warn-only)")
    parser.add_argument("--label", default=None,
                        help="free-form label stored in the document "
                             "(e.g. a commit id)")
    parser.add_argument("--list", action="store_true",
                        help="list scenarios and microbenchmarks, then exit")
    return parser


def _list_catalog() -> None:
    print("macro scenarios:")
    for name, scenario in sorted(MACRO_SCENARIOS.items()):
        print(f"  {name:20s} [{scenario.figure}] {scenario.description}")
    print("microbenchmarks:")
    for name, bench in sorted(MICRO_BENCHMARKS.items()):
        print(f"  {name:26s} {bench.description}")


def _render_run_summary(doc: dict) -> str:
    lines = []
    scenarios = doc.get("scenarios") or {}
    if scenarios:
        width = max(len(n) for n in scenarios)
        lines.append(f"{'scenario':<{width}s} {'wall s':>8s} {'events':>10s} "
                     f"{'ev/s':>10s} {'pkt/s':>10s} {'sim/real':>9s} "
                     f"{'peak MB':>8s}")
        for name, s in scenarios.items():
            peak = (f"{s['peak_mem_kb'] / 1024:.1f}"
                    if s.get("peak_mem_kb") is not None else "-")
            lines.append(
                f"{name:<{width}s} {s['wall_s']:>8.2f} {s['events']:>10d} "
                f"{s['events_per_sec']:>10,.0f} "
                f"{s['packets_per_sec']:>10,.0f} "
                f"{s['sim_time_ratio']:>9.1f} {peak:>8s}")
    micro = doc.get("micro") or {}
    if micro:
        width = max(len(n) for n in micro)
        lines.append("")
        lines.append(f"{'microbenchmark':<{width}s} {'ops':>8s} "
                     f"{'min ns/op':>10s} {'median':>10s}")
        for name, s in micro.items():
            lines.append(f"{name:<{width}s} {s['ops']:>8d} "
                         f"{s['min_ns_per_op']:>10.0f} "
                         f"{s['median_ns_per_op']:>10.0f}")
    return "\n".join(lines)


def _run_profile_pass(names, scale: float, seed: int, path: str) -> None:
    """cProfile each macro scenario once; write the attribution file."""
    from repro.sim.trace import TraceRecorder
    from repro.telemetry import context as _context
    from repro.telemetry.metrics import MetricsRegistry
    from repro.telemetry.profiling import FunctionProfiler

    class _PlainHub:
        def __init__(self) -> None:
            self.metrics = MetricsRegistry()
            self.profiler = None
            self.trace = TraceRecorder(enabled=False)

    blocks = {}
    for name in names:
        scenario = MACRO_SCENARIOS[name]
        profiler = FunctionProfiler()
        with _context.activated(_PlainHub()):
            profiler.profile(scenario.runner, scale, seed)
        blocks[name] = profiler.snapshot()
        top = profiler.hottest(3)
        if top:
            hottest = ", ".join(f"{e['function']} {e['tottime_s']:.2f}s"
                                for e in top)
            print(f"[bench] profile {name}: {hottest}")
    doc = build_profile_document(blocks, machine_metadata(), scale, seed)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"[bench] wrote {path}")


def main(argv=None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list:
        _list_catalog()
        return 0

    if args.current is not None and args.compare is None:
        parser.error("--current requires --compare")
    if args.fail_threshold is not None and args.compare is None:
        parser.error("--fail-threshold requires --compare")
    if args.strict_compare and args.compare is None:
        parser.error("--strict-compare requires --compare")

    scale = args.scale
    if scale is None:
        scale = QUICK_SCALE if args.quick else bench_scale()
    repetitions = args.repetitions
    if repetitions is None:
        repetitions = 3 if args.quick else 5

    scenario_names = None
    if args.scenarios is not None:
        scenario_names = [n.strip() for n in args.scenarios.split(",")
                          if n.strip()]
        unknown = [n for n in scenario_names if n not in MACRO_SCENARIOS]
        if unknown:
            print(f"unknown scenario(s): {', '.join(unknown)}; "
                  f"known: {', '.join(sorted(MACRO_SCENARIOS))}",
                  file=sys.stderr)
            return 2

    if args.current is not None:
        try:
            new_doc = load_report(args.current)
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            print(f"cannot load --current report: {exc}", file=sys.stderr)
            return 2
    else:
        started = time.perf_counter()
        selected = (scenario_names if scenario_names is not None
                    else list(MACRO_SCENARIOS))
        scenarios = {}
        if not args.skip_macro:
            scenarios = run_macro_scenarios(
                selected, scale=scale, seed=args.seed,
                measure_memory=not args.no_mem,
                progress=lambda n: print(f"[bench] macro {n} ..."))
        micro = {}
        if not args.skip_micro:
            micro = run_micro_benchmarks(
                repetitions=repetitions, warmup=args.warmup, seed=args.seed,
                progress=lambda n: print(f"[bench] micro {n} ..."))
        new_doc = build_report(scenarios, micro, machine_metadata(),
                               scale=scale, seed=args.seed, quick=args.quick,
                               label=args.label)
        write_report(new_doc, args.out)
        print(f"[bench] wrote {args.out} "
              f"in {time.perf_counter() - started:.1f}s\n")
        print(_render_run_summary(new_doc))
        if args.profile is not None and not args.skip_macro:
            _run_profile_pass(selected, scale, args.seed, args.profile)

    if args.compare is not None:
        try:
            old_doc = load_report(args.compare)
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            print(f"cannot load --compare baseline: {exc}", file=sys.stderr)
            return 2
        result = compare_reports(old_doc, new_doc,
                                 fail_threshold=args.fail_threshold,
                                 strict=args.strict_compare)
        print()
        print(render_comparison(result))
        if result["failed"]:
            return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
