"""Machine metadata stamped into every benchmark report.

A timing is meaningless without knowing what produced it: comparing a
laptop run against a CI container should be flagged, not silently
treated as a regression.  :func:`machine_metadata` captures the stable
facts (interpreter, platform, CPU count) that :func:`~repro.bench.report.compare_reports`
uses to annotate cross-machine comparisons.
"""

from __future__ import annotations

import platform
import sys
from typing import Dict

__all__ = ["machine_metadata"]


def machine_metadata() -> Dict[str, object]:
    """JSON-friendly description of the interpreter and host."""
    try:
        import os
        cpus = os.cpu_count()
    except Exception:  # pragma: no cover - defensive
        cpus = None
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "processor": platform.processor() or None,
        "cpu_count": cpus,
        "executable": sys.executable,
    }
