"""The shared workload-scale knob.

``HALFBACK_BENCH_SCALE`` has governed the figure benchmarks under
``benchmarks/`` since the seed (1.0 = laptop scale, 10 approximates
paper scale).  The observatory reads the same knob so "how fast is the
simulator at the scale I actually run" is one number everywhere;
``benchmarks/conftest.py`` imports :func:`bench_scale` rather than
re-parsing the environment.
"""

from __future__ import annotations

import os

__all__ = ["DEFAULT_SCALE", "QUICK_SCALE", "SCALE_ENV_VAR", "bench_scale"]

#: Environment variable shared with ``benchmarks/conftest.py``.
SCALE_ENV_VAR = "HALFBACK_BENCH_SCALE"

#: Scale when the environment does not say otherwise.
DEFAULT_SCALE = 1.0

#: Scale used by ``python -m repro.bench --quick`` (CI smoke).
QUICK_SCALE = 0.3

def bench_scale(default: float = DEFAULT_SCALE) -> float:
    """The ambient workload scale from ``HALFBACK_BENCH_SCALE``.

    Invalid or non-positive values fall back to ``default`` rather than
    crashing a benchmark run half-way through.
    """
    raw = os.environ.get(SCALE_ENV_VAR)
    if raw is None:
        return default
    try:
        value = float(raw)
    except ValueError:
        return default
    return value if value > 0 else default
