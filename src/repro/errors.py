"""Exception hierarchy for the Halfback reproduction library.

All exceptions raised by :mod:`repro` derive from :class:`ReproError`, so
callers can catch library failures with a single ``except`` clause while
still letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SimulationError(ReproError):
    """A violation of simulator invariants (e.g. scheduling into the past)."""


class ConfigurationError(ReproError):
    """An invalid parameter or inconsistent component configuration."""


class TopologyError(ReproError):
    """An invalid network topology operation (unknown node, no route...)."""


class TransportError(ReproError):
    """A violation of transport-layer invariants (bad segment, bad state)."""


class ProtocolError(TransportError):
    """A protocol-specific failure (unknown protocol name, bad hook use)."""


class WorkloadError(ReproError):
    """An invalid workload specification (bad distribution, bad rate)."""


class ExperimentError(ReproError):
    """A failure while assembling or running an experiment scenario."""
