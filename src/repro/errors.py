"""Exception hierarchy for the Halfback reproduction library.

All exceptions raised by :mod:`repro` derive from :class:`ReproError`, so
callers can catch library failures with a single ``except`` clause while
still letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SimulationError(ReproError):
    """A violation of simulator invariants (e.g. scheduling into the past)."""


class StallError(SimulationError):
    """The simulator stopped making progress (a zero-delay event loop).

    Raised by the :class:`~repro.sim.simulator.Simulator` watchdog when
    more than ``stall_event_limit`` events fire without the clock
    advancing.  Carries enough state to diagnose the cycle offline:
    ``time`` (the instant the clock froze at), ``events_at_instant``
    (how many events fired there), and ``pending`` — a rendered dump of
    the next scheduled events, which names the callbacks feeding the
    loop.
    """

    def __init__(self, time: float, events_at_instant: int,
                 pending: "list[str]") -> None:
        self.time = time
        self.events_at_instant = events_at_instant
        self.pending = list(pending)
        lines = [
            f"simulator stalled at t={time:.9f}: {events_at_instant} events "
            f"fired without the clock advancing",
            "next pending events:",
        ]
        lines.extend(f"  {entry}" for entry in self.pending)
        if not self.pending:
            lines.append("  (event queue empty)")
        super().__init__("\n".join(lines))


class ConfigurationError(ReproError):
    """An invalid parameter or inconsistent component configuration."""


class TopologyError(ReproError):
    """An invalid network topology operation (unknown node, no route...)."""


class TransportError(ReproError):
    """A violation of transport-layer invariants (bad segment, bad state)."""


class ProtocolError(TransportError):
    """A protocol-specific failure (unknown protocol name, bad hook use)."""


class WorkloadError(ReproError):
    """An invalid workload specification (bad distribution, bad rate)."""


class ChaosError(ReproError):
    """An invalid chaos impairment or profile specification."""


class ProcFaultError(ChaosError):
    """An injected harness process fault (the ``raise`` fault kind).

    Raised *inside a shard* by the :mod:`repro.chaos.procfault`
    injector; the shard supervisor treats it like any other worker
    exception (retry, then quarantine or propagate).
    """


class ParallelError(ReproError):
    """A failure in the process-parallel shard fan-out."""


class WorkerCrashError(ParallelError):
    """A pool worker died (SIGKILL / hard crash) and the shard ran out
    of retry budget.  ``shards`` names the cell indices lost."""

    def __init__(self, message: str, shards: "list[int]" = ()) -> None:
        self.shards = list(shards)
        super().__init__(message)


class ShardHungError(ParallelError):
    """A shard went heartbeat-silent past its deadline, was reaped, and
    ran out of retry budget.  ``shards`` names the cell indices lost."""

    def __init__(self, message: str, shards: "list[int]" = ()) -> None:
        self.shards = list(shards)
        super().__init__(message)


class JournalError(ReproError):
    """An invalid or unusable cell-result journal."""


class ExperimentError(ReproError):
    """A failure while assembling or running an experiment scenario."""
