"""repro — a reproduction of *Halfback: Running Short Flows Quickly and
Safely* (Li, Dong, Godfrey; CoNEXT 2015).

The package bundles a from-scratch discrete-event packet simulator
(:mod:`repro.sim`, :mod:`repro.net`), a reliable-transport framework
(:mod:`repro.transport`), the Halfback mechanisms (:mod:`repro.core`),
all eight schemes the paper evaluates (:mod:`repro.protocols`), the
paper's workloads (:mod:`repro.workloads`, :mod:`repro.planetlab`) and
an experiment harness regenerating every table and figure
(:mod:`repro.experiments`).

Quickstart::

    from repro import quick_fct
    fct = quick_fct("halfback", size=100_000)

"""

from repro.errors import (
    ConfigurationError,
    ExperimentError,
    ProtocolError,
    ReproError,
    SimulationError,
    TopologyError,
    TransportError,
    WorkloadError,
)

__version__ = "1.0.0"

__all__ = [
    "ConfigurationError",
    "ExperimentError",
    "ProtocolError",
    "ReproError",
    "SimulationError",
    "TopologyError",
    "TransportError",
    "WorkloadError",
    "__version__",
]
