"""``python -m repro audit`` — offline trace auditing.

Replays a recorded trace (``--telemetry --trace-file trace.jsonl``, or
a flight-recorder ``ring.jsonl``) through the full invariant-checker
pipeline and prints the audit report.  Exit status 1 when any invariant
was violated, so the command slots into CI pipelines directly.
"""

from __future__ import annotations

import argparse
from typing import List, Optional

from repro.audit.replay import replay

__all__ = ["main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro audit",
        description="Replay a trace JSONL file through the protocol "
                    "invariant auditor.",
    )
    parser.add_argument(
        "--replay", required=True, metavar="TRACE",
        help="trace file to audit (JSONL, as written by --trace-file "
             "or a flight-recorder ring.jsonl)",
    )
    parser.add_argument(
        "--out", default="audit-out", metavar="DIR",
        help="post-mortem bundle directory (default: %(default)s; "
             "written only when a violation is found)",
    )
    parser.add_argument(
        "--ring", type=int, default=4000, metavar="N",
        help="flight-recorder ring size (default: %(default)s)",
    )
    parser.add_argument(
        "--max-spans", type=int, default=200_000, metavar="N",
        help="lineage span retention bound (default: %(default)s)",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    auditor = replay(args.replay, out_dir=args.out,
                     ring_size=args.ring, max_spans=args.max_spans)
    print(auditor.report())
    return 1 if auditor.violations else 0


if __name__ == "__main__":  # pragma: no cover - module entry
    raise SystemExit(main())
