"""Protocol invariant checkers over the telemetry event stream.

Each checker watches :class:`~repro.sim.trace.TraceRecord` objects as
they are emitted and produces structured :class:`Violation` records when
a property the paper (or the transport contract) promises is broken:

* ``seq-ack-monotonicity`` — a receiver's cumulative ACK never regresses
  and new data is transmitted in increasing segment order;
* ``packet-conservation`` — per link, every transmitted packet was
  enqueued and every delivered/lost packet was in flight (in = out +
  dropped + in flight); a double delivery or a materialized packet is a
  conservation leak;
* ``pacing-evenness`` — Halfback's pacing phase spreads its segments at
  even intervals (§3.1) with a bounded initial burst;
* ``ropr-order`` — ROPR's retransmission pointer moves strictly
  monotonically (descending for the paper's reverse order, §3.2);
* ``ropr-never-acked`` — no data segment is transmitted after the
  sender has seen it acknowledged (cumulatively or via SACK);
* ``frontier-meet`` — when ROPR ends normally, every segment of the
  paced prefix has been either proposed for proactive retransmission or
  ACKed (the frontier-meet termination property, Fig. 3);
* ``rto-sanity`` — timeout counters advance one at a time and no
  RTO/recovery fires after a flow completed.

Checkers are deliberately *stream-only*: they reconstruct sender-side
knowledge purely from the events (see :class:`AckKnowledge`), so the
same code audits a live run and an offline trace replay identically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.telemetry.schema import (
    EV_CHAOS_CLONE,
    EV_HALFBACK_FRONTIER,
    EV_HALFBACK_PHASE,
    EV_LINK_LOSS,
    EV_PKT_ACK_GEN,
    EV_PKT_DELIVER,
    EV_PKT_ENQUEUE,
    EV_PKT_SEND,
    EV_PKT_TX,
    EV_QUEUE_DROP,
    EV_SENDER_DONE,
    EV_SENDER_RECOVERY,
    EV_SENDER_RTO,
)

__all__ = ["Violation", "Checker", "AckKnowledge", "FctConservationChecker",
           "default_checkers"]


@dataclass
class Violation:
    """One detected invariant violation.

    ``chain`` is filled in by the auditor from the lineage tracer: the
    offending packet's full causal chain (original transmission, hops,
    the retransmission itself) rendered as text lines.
    """

    checker: str
    time: float
    message: str
    flow: Optional[int] = None
    uid: Optional[int] = None
    seq: Optional[int] = None
    chain: List[str] = field(default_factory=list)

    def render(self) -> str:
        """One-line summary for reports."""
        where = f"flow={self.flow}" if self.flow is not None else "global"
        packet = f" uid={self.uid}" if self.uid is not None else ""
        return (f"[{self.checker}] t={self.time:.6f} {where}{packet}: "
                f"{self.message}")

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready shape (used by the post-mortem bundle)."""
        return {
            "checker": self.checker,
            "time": self.time,
            "message": self.message,
            "flow": self.flow,
            "uid": self.uid,
            "seq": self.seq,
            "chain": list(self.chain),
        }


class Checker:
    """Base class: observe records, emit violations, finalize at EOF."""

    name = "base"

    def observe(self, record) -> List[Violation]:
        """Process one record; return any violations it exposes."""
        return []

    def finalize(self) -> List[Violation]:
        """End-of-stream hook for checks that need the full run."""
        return []


# ======================================================================
# Sender-knowledge reconstruction
# ======================================================================


class AckKnowledge(Checker):
    """What each flow's sender provably knows is ACKed, per the stream.

    ACK contents (cumulative point + SACK ranges) are captured when the
    ACK packet is originated (``pkt.send`` with ``type == "ack"``) and
    merged into the flow's acked set when that packet completes its
    final hop (``pkt.deliver`` whose ``dst`` matches the ACK's
    destination).  Because a link emits ``pkt.deliver`` *before* handing
    the packet to the destination node, the sender's reaction to an ACK
    is always observed after the knowledge update — checkers evaluating
    at ``pkt.send`` time therefore see exactly the scoreboard state the
    sender acted on.

    In-network duplicates (``chaos.clone``) inherit the copied ACK's
    in-flight contents under their own uid: a clone that reaches the
    sender teaches it exactly what the original would have, even when
    the original itself is later dropped.
    """

    name = "ack-knowledge"

    def __init__(self) -> None:
        # ACK uid -> (flow, cumulative ack, sack ranges, destination).
        self._in_flight: Dict[int, Tuple[int, int, Any, str]] = {}
        self._cum: Dict[int, int] = {}
        # Above-cum SACKed segments (pruned as the cum point advances).
        self._sacked: Dict[int, Set[int]] = {}

    def observe(self, record) -> List[Violation]:
        kind = record.kind
        detail = record.detail
        if kind == EV_PKT_SEND:
            if detail.get("type") == "ack":
                self._in_flight[detail["uid"]] = (
                    detail["flow"], detail.get("ack", -1),
                    detail.get("sack", ()), detail.get("dst", ""),
                )
        elif kind == EV_CHAOS_CLONE:
            info = self._in_flight.get(detail.get("clone_of"))
            if info is not None:
                self._in_flight[detail["uid"]] = info
        elif kind == EV_PKT_DELIVER:
            info = self._in_flight.get(detail["uid"])
            if info is not None and detail.get("dst") == info[3]:
                del self._in_flight[detail["uid"]]
                # A corrupted ACK is discarded by the endpoint's
                # checksum stand-in, so its contents never reach the
                # sender — merging it would credit the sender with
                # knowledge it provably does not have.
                if not detail.get("corrupted"):
                    self._merge(info[0], info[1], info[2])
        elif kind in (EV_LINK_LOSS, EV_QUEUE_DROP):
            self._in_flight.pop(detail.get("uid"), None)
        elif kind == EV_SENDER_DONE:
            flow = detail.get("flow")
            self._cum.pop(flow, None)
            self._sacked.pop(flow, None)
        return []

    def _merge(self, flow: int, ack: int, sack) -> None:
        cum = self._cum.get(flow, 0)
        if ack > cum:
            cum = ack
            self._cum[flow] = cum
            old = self._sacked.get(flow)
            if old:
                self._sacked[flow] = {s for s in old if s >= cum}
        if sack:
            sacked = self._sacked.setdefault(flow, set())
            for lo, hi in sack:
                sacked.update(s for s in range(lo, hi) if s >= cum)

    def cum_ack(self, flow: int) -> int:
        """The flow's delivered cumulative ACK point."""
        return self._cum.get(flow, 0)

    def is_acked(self, flow: int, seq: int) -> bool:
        """True when the sender has seen ``seq`` acknowledged."""
        if seq < self._cum.get(flow, 0):
            return True
        sacked = self._sacked.get(flow)
        return sacked is not None and seq in sacked


# ======================================================================
# Checkers
# ======================================================================


class AckMonotonicityChecker(Checker):
    """Cumulative ACKs never regress; new data goes out in order."""

    name = "seq-ack-monotonicity"

    def __init__(self) -> None:
        self._last_ack: Dict[int, int] = {}
        self._last_new_seq: Dict[int, int] = {}

    def observe(self, record) -> List[Violation]:
        detail = record.detail
        if record.kind == EV_PKT_ACK_GEN:
            flow, ack = detail["flow"], detail["ack"]
            last = self._last_ack.get(flow, -1)
            if ack < last:
                return [Violation(
                    self.name, record.time,
                    f"cumulative ACK regressed {last} -> {ack}",
                    flow=flow, uid=detail["uid"],
                )]
            self._last_ack[flow] = ack
        elif (record.kind == EV_PKT_SEND
                and detail.get("type") == "data"
                and not detail.get("retransmit")):
            flow, seq = detail["flow"], detail.get("seq", -1)
            last = self._last_new_seq.get(flow, -1)
            self._last_new_seq[flow] = max(last, seq)
            if seq <= last:
                return [Violation(
                    self.name, record.time,
                    f"new data out of order: seq {seq} after {last}",
                    flow=flow, uid=detail["uid"], seq=seq,
                )]
        elif record.kind == EV_SENDER_DONE:
            self._last_ack.pop(detail.get("flow"), None)
            self._last_new_seq.pop(detail.get("flow"), None)
        return []


class ConservationChecker(Checker):
    """Per-link packet conservation: in = out + dropped + in flight.

    Stage-tracked per ``(link, uid)``: a transmission must follow an
    enqueue, and a delivery or in-flight loss must consume exactly one
    in-flight packet.  A second delivery of the same uid (or a packet
    materializing inside a link) is a conservation leak.  No end-of-run
    balance is asserted, so horizon-cut runs with packets legitimately
    in flight stay clean.
    """

    name = "packet-conservation"

    def __init__(self) -> None:
        self._queued: Dict[str, Set[int]] = {}
        self._flight: Dict[str, Set[int]] = {}
        self._armed = False  # only judge streams that carry lineage events

    def observe(self, record) -> List[Violation]:
        kind = record.kind
        detail = record.detail
        if kind == EV_PKT_ENQUEUE:
            self._armed = True
            self._queued.setdefault(record.source, set()).add(detail["uid"])
        elif kind == EV_PKT_TX:
            self._armed = True
            uid = detail["uid"]
            queued = self._queued.get(record.source)
            if queued is None or uid not in queued:
                return [Violation(
                    self.name, record.time,
                    f"link {record.source!r} transmitted a packet that was "
                    f"never enqueued",
                    flow=detail.get("flow"), uid=uid,
                )]
            queued.discard(uid)
            self._flight.setdefault(record.source, set()).add(uid)
        elif kind == EV_PKT_DELIVER and self._armed:
            uid = detail["uid"]
            flight = self._flight.get(record.source)
            if flight is None or uid not in flight:
                return [Violation(
                    self.name, record.time,
                    f"link {record.source!r} delivered a packet that was not "
                    f"in flight (conservation leak)",
                    flow=detail.get("flow"), uid=uid,
                )]
            flight.discard(uid)
        elif kind == EV_LINK_LOSS and self._armed:
            uid = detail["uid"]
            flight = self._flight.get(record.source)
            if flight is None or uid not in flight:
                return [Violation(
                    self.name, record.time,
                    f"link {record.source!r} lost a packet that was not "
                    f"in flight",
                    uid=uid,
                )]
            flight.discard(uid)
        return []


class PacingChecker(Checker):
    """Halfback's pacing phase spreads segments evenly (§3.1).

    The ``halfback.phase`` PACING event carries the plan (segments,
    interval, configured initial burst).  First-transmission data sends
    are collected until the phase ends; the leading same-timestamp group
    must not exceed the configured burst (+1 for the pacer's immediate
    first release), and every subsequent inter-send gap must sit within
    ``TOLERANCE`` of the median gap — a collapsed or bursty pacer shows
    up as a wildly deviant gap.
    """

    name = "pacing-evenness"
    TOLERANCE = 0.3

    def __init__(self) -> None:
        # flow -> {"interval", "burst", "times"}
        self._active: Dict[int, Dict[str, Any]] = {}

    def observe(self, record) -> List[Violation]:
        detail = record.detail
        if record.kind == EV_HALFBACK_PHASE:
            flow = detail["flow"]
            if detail.get("phase") == "pacing":
                self._active[flow] = {
                    "interval": detail.get("interval", 0.0),
                    "burst": detail.get("burst", 1),
                    "times": [],
                }
            elif flow in self._active:
                return self._evaluate(flow, record.time)
        elif (record.kind == EV_PKT_SEND
                and detail.get("type") == "data"
                and not detail.get("retransmit")):
            state = self._active.get(detail["flow"])
            if state is not None:
                state["times"].append(record.time)
        return []

    def _evaluate(self, flow: int, now: float) -> List[Violation]:
        state = self._active.pop(flow)
        times: List[float] = state["times"]
        if len(times) < 2:
            return []
        burst = state["burst"]
        leading = 1
        while leading < len(times) and times[leading] == times[0]:
            leading += 1
        out: List[Violation] = []
        if leading > burst + 1:
            # The pacer releases its first item immediately, sharing the
            # burst's timestamp — hence the +1 allowance.
            out.append(Violation(
                self.name, now,
                f"{leading} segments sent at once; configured initial "
                f"burst allows {burst} (+1 immediate paced release)",
                flow=flow,
            ))
        paced = times[leading - 1:]
        gaps = [b - a for a, b in zip(paced, paced[1:])]
        if len(gaps) < 2:
            return out
        median = sorted(gaps)[len(gaps) // 2]
        if median <= 0:
            out.append(Violation(
                self.name, now,
                "paced releases collapsed to a single instant",
                flow=flow,
            ))
            return out
        for index, gap in enumerate(gaps):
            if abs(gap - median) > self.TOLERANCE * median:
                out.append(Violation(
                    self.name, now,
                    f"uneven pacing: gap {index + 1} is {gap:.6f}s vs "
                    f"median {median:.6f}s (tolerance "
                    f"{self.TOLERANCE:.0%})",
                    flow=flow,
                ))
                break  # one violation per flow is enough signal
        return out


class RoprOrderChecker(Checker):
    """ROPR's pointer is strictly monotone in the configured direction.

    A violating frontier step is held back briefly so the immediately
    following ``pkt.send`` of that proposal can stamp the violation with
    the offending packet's uid (the frontier event itself is emitted
    just before the transmission); any other event for the flow flushes
    a pending violation un-stamped.
    """

    name = "ropr-order"

    def __init__(self) -> None:
        self._order: Dict[int, str] = {}
        self._last_pointer: Dict[int, int] = {}
        self._pending: Dict[int, Violation] = {}  # flow -> violation

    def observe(self, record) -> List[Violation]:
        detail = record.detail
        kind = record.kind
        if kind == EV_PKT_SEND and detail.get("proactive"):
            pending = self._pending.pop(detail["flow"], None)
            if pending is not None:
                if pending.seq == detail.get("seq"):
                    pending.uid = detail["uid"]
                return [pending]
            return []
        if kind == EV_HALFBACK_PHASE:
            flow = detail["flow"]
            out = self._flush(flow)
            if detail.get("phase") == "ropr":
                self._order[flow] = detail.get("order", "reverse")
            return out
        if kind != EV_HALFBACK_FRONTIER:
            return []
        flow = detail["flow"]
        out = self._flush(flow)
        pointer = detail["pointer"]
        last = self._last_pointer.get(flow)
        self._last_pointer[flow] = pointer
        if last is not None:
            order = self._order.get(flow, "reverse")
            bad = pointer >= last if order == "reverse" else pointer <= last
            if bad:
                arrow = "descend" if order == "reverse" else "ascend"
                self._pending[flow] = Violation(
                    self.name, record.time,
                    f"ROPR pointer must strictly {arrow} "
                    f"({order} order): {last} -> {pointer}",
                    flow=flow, seq=pointer,
                )
        return out

    def _flush(self, flow: int) -> List[Violation]:
        pending = self._pending.pop(flow, None)
        return [pending] if pending is not None else []

    def finalize(self) -> List[Violation]:
        out = list(self._pending.values())
        self._pending.clear()
        return out


class NeverRetransmitAckedChecker(Checker):
    """No data segment is sent after the sender saw it ACKed (§3.2)."""

    name = "ropr-never-acked"

    def __init__(self, knowledge: AckKnowledge) -> None:
        self._knowledge = knowledge

    def observe(self, record) -> List[Violation]:
        detail = record.detail
        if record.kind != EV_PKT_SEND or detail.get("type") != "data":
            return []
        flow, seq = detail["flow"], detail.get("seq", -1)
        if seq >= 0 and self._knowledge.is_acked(flow, seq):
            what = ("proactively retransmitted" if detail.get("proactive")
                    else "retransmitted" if detail.get("retransmit")
                    else "transmitted")
            return [Violation(
                self.name, record.time,
                f"segment {seq} {what} after the sender saw it ACKed "
                f"(cum={self._knowledge.cum_ack(flow)})",
                flow=flow, uid=detail["uid"], seq=seq,
            )]
        return []


class FrontierMeetChecker(Checker):
    """ROPR ends exactly when proposals and ACKs cover the paced prefix.

    Evaluated when a flow leaves the ROPR phase normally (RTO-aborted
    flows are skipped — the paper hands those to reactive recovery).
    At that instant every segment of ``[0, plan.segments)`` must be
    either proposed by a frontier event or ACKed per the sender's
    delivered-ACK knowledge; a gap means the phase terminated early.
    """

    name = "frontier-meet"

    def __init__(self, knowledge: AckKnowledge) -> None:
        self._knowledge = knowledge
        self._segments: Dict[int, int] = {}
        self._proposed: Dict[int, Set[int]] = {}
        self._in_ropr: Set[int] = set()
        self._rto_flows: Set[int] = set()

    def observe(self, record) -> List[Violation]:
        detail = record.detail
        kind = record.kind
        if kind == EV_HALFBACK_FRONTIER:
            self._proposed.setdefault(detail["flow"], set()).add(
                detail["pointer"])
        elif kind == EV_SENDER_RTO:
            self._rto_flows.add(detail["flow"])
        elif kind == EV_HALFBACK_PHASE:
            flow = detail["flow"]
            phase = detail.get("phase")
            if phase == "pacing":
                self._segments[flow] = detail.get("segments", 0)
            elif phase == "ropr":
                self._in_ropr.add(flow)
            elif phase in ("drain", "fallback"):
                was_ropr = flow in self._in_ropr
                self._in_ropr.discard(flow)
                if was_ropr and flow not in self._rto_flows:
                    return self._check_coverage(flow, record.time)
        elif kind == EV_SENDER_DONE:
            flow = detail.get("flow")
            self._segments.pop(flow, None)
            self._proposed.pop(flow, None)
            self._in_ropr.discard(flow)
            self._rto_flows.discard(flow)
        return []

    def _check_coverage(self, flow: int, now: float) -> List[Violation]:
        segments = self._segments.get(flow, 0)
        proposed = self._proposed.get(flow, set())
        missing = [s for s in range(segments)
                   if s not in proposed
                   and not self._knowledge.is_acked(flow, s)]
        if not missing:
            return []
        shown = ", ".join(map(str, missing[:8]))
        if len(missing) > 8:
            shown += f", ... ({len(missing)} total)"
        return [Violation(
            self.name, now,
            f"ROPR ended with segments neither proposed nor ACKed: {shown}",
            flow=flow, seq=missing[0],
        )]


class RtoSanityChecker(Checker):
    """Timeout counters advance by one; nothing fires after completion."""

    name = "rto-sanity"

    def __init__(self) -> None:
        self._done: Set[int] = set()
        self._timeouts: Dict[int, int] = {}

    def observe(self, record) -> List[Violation]:
        detail = record.detail
        kind = record.kind
        if kind == EV_SENDER_DONE:
            self._done.add(detail["flow"])
            self._timeouts.pop(detail["flow"], None)
        elif kind == EV_SENDER_RTO:
            flow = detail["flow"]
            if flow in self._done:
                return [Violation(
                    self.name, record.time,
                    "RTO fired after the flow completed", flow=flow,
                )]
            count = detail.get("timeouts", 0)
            last = self._timeouts.get(flow, 0)
            self._timeouts[flow] = count
            if count != last + 1:
                return [Violation(
                    self.name, record.time,
                    f"timeout counter jumped {last} -> {count}", flow=flow,
                )]
        elif kind == EV_SENDER_RECOVERY:
            flow = detail["flow"]
            if flow in self._done:
                return [Violation(
                    self.name, record.time,
                    "recovery entered after the flow completed", flow=flow,
                )]
            if detail.get("point", 0) < 0:
                return [Violation(
                    self.name, record.time,
                    f"recovery point {detail.get('point')} is negative",
                    flow=flow,
                )]
        return []


class FctConservationChecker(Checker):
    """The FCT-attribution conservation invariant (PR 7).

    :class:`repro.obs.spans.FlowSpanBuilder` partitions every completed
    flow's ``[flow.start, flow.complete]`` window into named components;
    this checker runs a builder over the audited stream and flags any
    flow whose components do not sum back to its FCT within float
    tolerance — either a builder classification hole or an emitter
    breaking the lineage contract the attribution rests on.  The
    ``fct`` detail on ``flow.complete`` is cross-checked against the
    observed window too.
    """

    name = "fct-conservation"

    def __init__(self) -> None:
        # Deferred import: repro.audit must stay importable without
        # pulling the whole obs package in at module-import time.
        from repro.obs.spans import CONSERVATION_TOLERANCE, FlowSpanBuilder

        self._tolerance = CONSERVATION_TOLERANCE
        self._queued: List[Violation] = []
        self._builder = FlowSpanBuilder(on_complete=self._judge)

    def _judge(self, breakdown) -> None:
        tolerance = self._tolerance * max(1.0, breakdown.fct)
        error = breakdown.conservation_error
        if error > tolerance:
            parts = ", ".join(
                f"{name}={value:.6f}"
                for name, value in sorted(breakdown.components.items()))
            self._queued.append(Violation(
                self.name, breakdown.complete,
                f"components sum off FCT by {error:.3e}s "
                f"(fct={breakdown.fct:.6f}s: {parts})",
                flow=breakdown.flow,
            ))
        if (breakdown.fct_event is not None
                and abs(breakdown.fct_event - breakdown.fct) > tolerance):
            self._queued.append(Violation(
                self.name, breakdown.complete,
                f"flow.complete fct={breakdown.fct_event:.6f}s disagrees "
                f"with observed window {breakdown.fct:.6f}s",
                flow=breakdown.flow,
            ))

    def observe(self, record) -> List[Violation]:
        self._builder.observe(record)
        if not self._queued:
            return []
        queued, self._queued = self._queued, []
        return queued


def default_checkers() -> List[Checker]:
    """The full registry, sharing one :class:`AckKnowledge` instance.

    The knowledge helper leads the list (it is a silent checker), so by
    the time any dependent checker judges a record the sender-knowledge
    view already reflects it.
    """
    # Deferred import: repro.hb.detect imports this module's Checker
    # base, so importing it at module scope would be circular.
    from repro.hb.detect import SchedulerNondeterminismChecker
    knowledge = AckKnowledge()
    checkers: List[Checker] = [
        knowledge,
        AckMonotonicityChecker(),
        ConservationChecker(),
        PacingChecker(),
        RoprOrderChecker(),
        NeverRetransmitAckedChecker(knowledge),
        FrontierMeetChecker(knowledge),
        RtoSanityChecker(),
        FctConservationChecker(),
        SchedulerNondeterminismChecker(),
    ]
    return checkers
