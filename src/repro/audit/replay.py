"""Offline trace replay through the auditor.

A trace captured with ``--telemetry --trace-file trace.jsonl`` (or the
flight recorder's ``ring.jsonl``) can be re-audited after the fact:
the JSONL lines are parsed back into
:class:`~repro.sim.trace.TraceRecord` objects and fed through exactly
the same checker/lineage pipeline a live run uses.  Lineage detail
(``pkt.*`` events) is optional — without it the invariant checkers
still run, they just attach no causal chains.
"""

from __future__ import annotations

import json
from typing import Iterator, List, Optional

from repro.audit.invariants import Checker
from repro.audit.session import Auditor
from repro.sim.trace import TraceRecord

__all__ = ["iter_trace", "replay"]


def iter_trace(path: str) -> Iterator[TraceRecord]:
    """Yield :class:`TraceRecord` objects from a JSONL trace file.

    Blank lines are skipped; malformed lines raise ``ValueError`` with
    the line number so a truncated crash trace fails loudly, except for
    a *final* partial line (the usual crash artifact), which is dropped.
    """
    with open(path, "r", encoding="utf-8") as fh:
        pending_error: Optional[ValueError] = None
        for lineno, line in enumerate(fh, start=1):
            if pending_error is not None:
                raise pending_error
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError as exc:
                # Defer: only raise if this is not the last line.
                pending_error = ValueError(
                    f"{path}:{lineno}: not valid JSON ({exc})")
                continue
            try:
                yield TraceRecord(
                    time=float(payload["time"]),
                    kind=str(payload["kind"]),
                    source=str(payload["source"]),
                    detail=dict(payload.get("detail") or {}),
                )
            except (KeyError, TypeError) as exc:
                raise ValueError(
                    f"{path}:{lineno}: not a trace record ({exc})") from None


def replay(path: str, out_dir: Optional[str] = None,
           checkers: Optional[List[Checker]] = None,
           ring_size: int = 4000, max_spans: int = 200_000) -> Auditor:
    """Audit a recorded trace file; returns the finalized auditor."""
    auditor = Auditor(checkers=checkers, out_dir=out_dir,
                      ring_size=ring_size, max_spans=max_spans)
    for record in iter_trace(path):
        auditor.observe(record)
    return auditor.finalize()
