"""Packet lineage: spans, hop events, and causal chains.

Every packet gets a *span* opened by its ``pkt.send`` event and extended
by each hop event the network layers emit (enqueue, serialization
start, in-flight loss, queue drop, delivery).  Spans link to causal
parents:

* an ACK's parent is the data packet that triggered it
  (``pkt.ack_gen``'s ``parent`` uid);
* a retransmission's parent is the *previous* transmission of the same
  ``(flow, seq)`` — walking the parent links therefore yields the full
  retransmission history down to the original send.

The tracer is stream-only and bounded: spans are kept in insertion
order and the oldest are evicted past ``max_spans``, so auditing a long
workload cannot grow without bound.  Causal chains are resolved against
whatever is still retained — by construction the packets involved in a
fresh violation are the most recent ones.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional

from repro.telemetry.schema import (
    EV_CHAOS_CLONE,
    EV_LINK_LOSS,
    EV_PKT_ACK_GEN,
    EV_PKT_DELIVER,
    EV_PKT_ENQUEUE,
    EV_PKT_SEND,
    EV_PKT_TX,
    EV_QUEUE_DROP,
)

__all__ = ["HopEvent", "PacketSpan", "LineageTracer"]

#: Retained uids per flow for timeline rendering (spans themselves are
#: bounded separately by ``max_spans``).
FLOW_INDEX_BOUND = 4096

#: Causal-chain walk depth cap (a retransmission storm deeper than this
#: is itself diagnostic; the chain is truncated, not wrong).
MAX_CHAIN_DEPTH = 32


@dataclass
class HopEvent:
    """One hop in a packet's life."""

    time: float
    kind: str
    where: str

    def render(self) -> str:
        return f"t={self.time:.6f}  {self.kind:<12s} @ {self.where}"


@dataclass
class PacketSpan:
    """The recorded life of one packet."""

    uid: int
    flow: int
    created: float
    kind: str = "?"
    seq: int = -1
    ack: int = -1
    src: str = ""
    dst: str = ""
    retransmit: bool = False
    proactive: bool = False
    #: Causal parent uid (triggering data packet for ACKs, previous
    #: transmission for retransmits); None for original sends.
    parent: Optional[int] = None
    fate: str = "in-flight"
    events: List[HopEvent] = field(default_factory=list)

    def label(self) -> str:
        """Compact identity, e.g. ``data seq=7 (proactive-rtx)``."""
        parts = [self.kind]
        if self.seq >= 0:
            parts.append(f"seq={self.seq}")
        if self.ack >= 0:
            parts.append(f"ack={self.ack}")
        if self.retransmit:
            parts.append("(proactive-rtx)" if self.proactive else "(rtx)")
        return " ".join(parts)

    def render(self) -> List[str]:
        """Multi-line rendering: header, hops, fate."""
        lines = [f"uid={self.uid} flow={self.flow} {self.label()}"]
        lines.extend(f"  {event.render()}" for event in self.events)
        lines.append(f"  fate: {self.fate}")
        return lines


class LineageTracer:
    """Builds packet spans and per-flow causal trees from the stream."""

    def __init__(self, max_spans: int = 200_000) -> None:
        if max_spans <= 0:
            raise ValueError("max_spans must be positive")
        self._max_spans = max_spans
        self._spans: "OrderedDict[int, PacketSpan]" = OrderedDict()
        self._flows: Dict[int, Deque[int]] = {}
        # flow -> seq -> uid of the latest transmission (parent links).
        self._latest_tx: Dict[int, Dict[int, int]] = {}
        #: Spans evicted past the retention bound (diagnostic).
        self.evicted_spans = 0

    # ------------------------------------------------------------------
    # Stream intake
    # ------------------------------------------------------------------

    def observe(self, record) -> None:
        """Fold one trace record into the lineage state."""
        kind = record.kind
        if not (kind.startswith("pkt.") or kind == EV_QUEUE_DROP
                or kind == EV_LINK_LOSS or kind == EV_CHAOS_CLONE):
            return
        detail = record.detail
        uid = detail.get("uid")
        if uid is None:
            return
        if kind == EV_PKT_SEND:
            span = self._open_span(record, uid, detail)
            self._link_transmission(span)
            span.events.append(HopEvent(record.time, kind, record.source))
            return
        if kind == EV_CHAOS_CLONE:
            span = self._open_clone_span(record, uid, detail)
            span.events.append(HopEvent(record.time, kind, record.source))
            return
        span = self._spans.get(uid)
        if span is None:
            # A packet born outside Host.send (e.g. an in-network
            # duplicate): open an orphan span so its hops still trace.
            span = PacketSpan(uid=uid, flow=detail.get("flow", -1),
                              created=record.time, kind="orphan")
            self._retain(span)
        span.events.append(HopEvent(record.time, kind, record.source))
        if kind == EV_PKT_DELIVER:
            if not span.dst or detail.get("dst") == span.dst:
                span.fate = "delivered"
        elif kind == EV_QUEUE_DROP:
            span.fate = f"dropped @ {record.source}"
        elif kind == EV_LINK_LOSS:
            span.fate = f"lost @ {record.source}"
        elif kind == EV_PKT_ACK_GEN:
            span.parent = detail.get("parent")
            span.ack = detail.get("ack", span.ack)

    def _open_span(self, record, uid: int, detail) -> PacketSpan:
        span = PacketSpan(
            uid=uid,
            flow=detail.get("flow", -1),
            created=record.time,
            kind=detail.get("type", "?"),
            seq=detail.get("seq", -1),
            ack=detail.get("ack", -1),
            src=record.source,
            dst=detail.get("dst", ""),
            retransmit=bool(detail.get("retransmit")),
            proactive=bool(detail.get("proactive")),
        )
        self._retain(span)
        return span

    def _open_clone_span(self, record, uid: int, detail) -> PacketSpan:
        """Span for an in-network duplicate (``chaos.clone``).

        The clone wears the original's headers, so the span copies them
        from the parent when it is still retained; ``parent`` is the
        causal edge back to the copied packet.  Clones are *not* linked
        into ``_latest_tx`` — they are middlebox artifacts, not sender
        transmissions.
        """
        parent_uid = detail.get("clone_of")
        parent = self._spans.get(parent_uid) if parent_uid is not None else None
        span = PacketSpan(
            uid=uid,
            flow=detail.get("flow", -1),
            created=record.time,
            kind=f"dup:{parent.kind}" if parent is not None else "dup",
            seq=parent.seq if parent is not None else -1,
            ack=parent.ack if parent is not None else -1,
            src=record.source,
            dst=parent.dst if parent is not None else "",
            parent=parent_uid,
        )
        self._retain(span)
        return span

    def _link_transmission(self, span: PacketSpan) -> None:
        if span.kind not in ("data", "probe") or span.seq < 0:
            return
        per_flow = self._latest_tx.setdefault(span.flow, {})
        previous = per_flow.get(span.seq)
        if span.retransmit and previous is not None:
            span.parent = previous
        per_flow[span.seq] = span.uid

    def _retain(self, span: PacketSpan) -> None:
        self._spans[span.uid] = span
        index = self._flows.get(span.flow)
        if index is None:
            index = self._flows[span.flow] = deque(maxlen=FLOW_INDEX_BOUND)
        index.append(span.uid)
        while len(self._spans) > self._max_spans:
            self._spans.popitem(last=False)
            self.evicted_spans += 1

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._spans)

    def span(self, uid: int) -> Optional[PacketSpan]:
        """The retained span for ``uid``, if any."""
        return self._spans.get(uid)

    def span_for_seq(self, flow: int, seq: int) -> Optional[PacketSpan]:
        """The latest retained transmission span of ``(flow, seq)``."""
        uid = self._latest_tx.get(flow, {}).get(seq)
        return self._spans.get(uid) if uid is not None else None

    def flow_spans(self, flow: int) -> List[PacketSpan]:
        """Retained spans of ``flow``, oldest first."""
        return [self._spans[uid] for uid in self._flows.get(flow, ())
                if uid in self._spans]

    def causal_chain(self, uid: int) -> List[PacketSpan]:
        """The span's ancestry, root (original cause) first."""
        chain: List[PacketSpan] = []
        seen = set()
        current = self._spans.get(uid)
        while (current is not None and current.uid not in seen
                and len(chain) < MAX_CHAIN_DEPTH):
            chain.append(current)
            seen.add(current.uid)
            current = (self._spans.get(current.parent)
                       if current.parent is not None else None)
        chain.reverse()
        return chain

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------

    def render_chain(self, uid: int) -> List[str]:
        """The causal chain as text lines (root first, hops indented)."""
        chain = self.causal_chain(uid)
        if not chain:
            return [f"uid={uid}: no retained lineage"]
        lines: List[str] = []
        for depth, span in enumerate(chain):
            prefix = "  " * depth
            caused = "" if depth == 0 else "caused "
            rendered = span.render()
            lines.append(f"{prefix}{caused}{rendered[0]}")
            lines.extend(f"{prefix}{line}" for line in rendered[1:])
        return lines

    def render_flow(self, flow: int, limit: int = 60) -> str:
        """Chronological ASCII causal timeline of one flow's packets."""
        entries = []
        for span in self.flow_spans(flow):
            for event in span.events:
                entries.append((event.time, span.uid, span.label(),
                                event.kind, event.where))
        entries.sort(key=lambda e: (e[0], e[1]))
        shown = entries[-limit:]
        lines = [f"flow {flow} causal timeline "
                 f"({len(shown)} of {len(entries)} hop events)"]
        for time, uid, label, kind, where in shown:
            lines.append(
                f"  t={time:.6f}  [uid {uid:>6d} {label:<24s}] "
                f"{kind:<12s} @ {where}")
        return "\n".join(lines)
