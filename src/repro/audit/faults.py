"""Fault injection for exercising the auditor.

Two families, used by the property tests and available for manual
experiments:

* **Legitimate chaos** — behaviours a correct protocol must tolerate,
  which the auditor must *not* flag: in-network reordering
  (:class:`ReorderingQueue`) and in-network duplication
  (:func:`attach_duplicator`, which clones packets so each copy has its
  own identity, exactly like a duplicating middlebox).
* **Seeded bugs** — violations of the paper's invariants, which the
  auditor *must* flag: an out-of-order ROPR sweep
  (:func:`seed_ropr_misorder`), a packet-conservation leak
  (:func:`seed_conservation_leak`), and a regressing cumulative ACK
  (:func:`seed_ack_regression`).

The seeded bugs are monkey-patches on live objects rather than code
paths in the library itself — the library stays correct; the tests
break it from the outside.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.core.ropr import RoprScheduler
from repro.net.link import Link
from repro.net.packet import Packet, PacketType
from repro.net.queue import DropTailQueue

__all__ = [
    "MisorderedRopr",
    "ReorderingQueue",
    "attach_duplicator",
    "seed_ack_regression",
    "seed_conservation_leak",
    "seed_ropr_misorder",
]


# ======================================================================
# Legitimate chaos (must audit clean)
# ======================================================================


class ReorderingQueue(DropTailQueue):
    """Drop-tail queue that randomly swaps the two head packets.

    Models in-network reordering (multi-path, load balancing): the
    packets still arrive, just not in FIFO order.  No invariant the
    auditor checks may depend on delivery order, so runs through this
    queue must stay clean.
    """

    def __init__(self, capacity_bytes: int, rng, swap_prob: float = 0.2) -> None:
        super().__init__(capacity_bytes)
        self._rng = rng
        self.swap_prob = swap_prob
        self.swaps = 0

    def dequeue(self) -> Optional[Packet]:
        if len(self._packets) >= 2 and self._rng.random() < self.swap_prob:
            self._packets[0], self._packets[1] = (
                self._packets[1], self._packets[0])
            self.swaps += 1
        return super().dequeue()


def attach_duplicator(link: Link, rng, prob: float = 0.05) -> Callable[[], int]:
    """Make ``link`` occasionally emit a duplicate of an offered packet.

    The duplicate is a :meth:`~repro.net.packet.Packet.clone` — a fresh
    uid, like a real duplicating middlebox re-emitting the bytes — so
    packet conservation holds per copy and the lineage tracer records
    the clone as an orphan span.  Returns a callable reporting how many
    duplicates were injected.
    """
    original = link.send
    injected = [0]

    def duplicating(packet: Packet) -> None:
        original(packet)
        if rng.random() < prob:
            injected[0] += 1
            original(packet.clone())

    link.send = duplicating  # type: ignore[method-assign]
    return lambda: injected[0]


# ======================================================================
# Seeded bugs (must be detected)
# ======================================================================


class MisorderedRopr:
    """Wraps a :class:`RoprScheduler`, swapping each candidate pair.

    Where the real scheduler proposes ``9, 8, 7, 6, ...`` this proposes
    ``8, 9, 6, 7, ...`` — every pair produces a pointer step in the
    wrong direction, which the ``ropr-order`` checker must flag.
    """

    def __init__(self, inner: RoprScheduler) -> None:
        self._inner = inner
        self._stash: Optional[int] = None

    def next_candidate(self, is_acked) -> Optional[int]:
        if self._stash is not None:
            candidate, self._stash = self._stash, None
            return candidate
        first = self._inner.next_candidate(is_acked)
        if first is None:
            return None
        second = self._inner.next_candidate(is_acked)
        if second is None:
            return first
        self._stash = first
        return second

    def drain(self, is_acked) -> List[int]:
        batch: List[int] = []
        while True:
            candidate = self.next_candidate(is_acked)
            if candidate is None:
                return batch
            batch.append(candidate)

    @property
    def finished(self) -> bool:
        return self._stash is None and self._inner.finished

    @property
    def proposed(self) -> List[int]:
        return self._inner.proposed

    @property
    def proposed_count(self) -> int:
        return self._inner.proposed_count

    @property
    def n_segments(self) -> int:
        return self._inner.n_segments

    @property
    def order(self) -> str:
        return self._inner.order


def seed_ropr_misorder(sender) -> None:
    """Make ``sender`` (a HalfbackSender) run ROPR out of order."""
    if sender.ropr is not None:
        sender.ropr = MisorderedRopr(sender.ropr)
        return
    original = sender.on_established

    def patched() -> None:
        original()
        if sender.ropr is not None:
            sender.ropr = MisorderedRopr(sender.ropr)

    sender.on_established = patched  # type: ignore[method-assign]


def seed_conservation_leak(link: Link, every: int = 5) -> None:
    """Make ``link`` deliver every ``every``-th packet twice.

    The second delivery reuses the *same* packet object (same uid): a
    packet materialized out of nothing, which the
    ``packet-conservation`` checker must flag.
    """
    original = link._deliver
    count = [0]

    def leaky(packet: Packet) -> None:
        count[0] += 1
        original(packet)
        if count[0] % every == 0:
            original(packet)

    link._deliver = leaky  # type: ignore[method-assign]


def seed_ack_regression(receiver, after: int = 3) -> None:
    """Make ``receiver`` report a regressed cumulative ACK.

    After ``after`` ACKs, every subsequent ACK claims ``ack=0`` — the
    cumulative point moves backwards, which the
    ``seq-ack-monotonicity`` checker must flag.
    """
    original = receiver._send
    acks = [0]

    def regressed(kind, ack: int = -1, sack=(), echo_time: float = -1.0):
        if kind == PacketType.ACK:
            acks[0] += 1
            if acks[0] > after and ack > 0:
                ack = 0
        return original(kind, ack=ack, sack=sack, echo_time=echo_time)

    receiver._send = regressed  # type: ignore[method-assign]
