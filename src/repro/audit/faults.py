"""Fault injection for exercising the auditor.

Two families, used by the property tests and available for manual
experiments:

* **Legitimate chaos** — behaviours a correct protocol must tolerate,
  which the auditor must *not* flag: in-network reordering
  (:class:`ReorderingQueue`) and in-network duplication
  (:func:`attach_duplicator`).  These middleboxes now live in
  :mod:`repro.chaos.impairments` (promoted into the chaos engine, where
  they compose into full profiles); they are re-exported here so
  existing imports keep working.
* **Seeded bugs** — violations of the paper's invariants, which the
  auditor *must* flag: an out-of-order ROPR sweep
  (:func:`seed_ropr_misorder`), a packet-conservation leak
  (:func:`seed_conservation_leak`), and a regressing cumulative ACK
  (:func:`seed_ack_regression`).

The seeded bugs are monkey-patches on live objects rather than code
paths in the library itself — the library stays correct; the tests
break it from the outside.
"""

from __future__ import annotations

from typing import List, Optional

from repro.chaos.impairments import ReorderingQueue, attach_duplicator
from repro.core.ropr import RoprScheduler
from repro.net.link import Link
from repro.net.packet import Packet, PacketType

__all__ = [
    "MisorderedRopr",
    "ReorderingQueue",
    "attach_duplicator",
    "seed_ack_regression",
    "seed_conservation_leak",
    "seed_ropr_misorder",
]


# ======================================================================
# Seeded bugs (must be detected)
# ======================================================================


class MisorderedRopr:
    """Wraps a :class:`RoprScheduler`, swapping each candidate pair.

    Where the real scheduler proposes ``9, 8, 7, 6, ...`` this proposes
    ``8, 9, 6, 7, ...`` — every pair produces a pointer step in the
    wrong direction, which the ``ropr-order`` checker must flag.
    """

    def __init__(self, inner: RoprScheduler) -> None:
        self._inner = inner
        self._stash: Optional[int] = None

    def next_candidate(self, is_acked) -> Optional[int]:
        if self._stash is not None:
            candidate, self._stash = self._stash, None
            return candidate
        first = self._inner.next_candidate(is_acked)
        if first is None:
            return None
        second = self._inner.next_candidate(is_acked)
        if second is None:
            return first
        self._stash = first
        return second

    def drain(self, is_acked) -> List[int]:
        batch: List[int] = []
        while True:
            candidate = self.next_candidate(is_acked)
            if candidate is None:
                return batch
            batch.append(candidate)

    @property
    def finished(self) -> bool:
        return self._stash is None and self._inner.finished

    @property
    def proposed(self) -> List[int]:
        return self._inner.proposed

    @property
    def proposed_count(self) -> int:
        return self._inner.proposed_count

    @property
    def n_segments(self) -> int:
        return self._inner.n_segments

    @property
    def order(self) -> str:
        return self._inner.order


def seed_ropr_misorder(sender) -> None:
    """Make ``sender`` (a HalfbackSender) run ROPR out of order."""
    if sender.ropr is not None:
        sender.ropr = MisorderedRopr(sender.ropr)
        return
    original = sender.on_established

    def patched() -> None:
        original()
        if sender.ropr is not None:
            sender.ropr = MisorderedRopr(sender.ropr)

    sender.on_established = patched  # type: ignore[method-assign]


def seed_conservation_leak(link: Link, every: int = 5) -> None:
    """Make ``link`` deliver every ``every``-th packet twice.

    The second delivery reuses the *same* packet object (same uid): a
    packet materialized out of nothing, which the
    ``packet-conservation`` checker must flag.
    """
    original = link._deliver
    count = [0]

    def leaky(packet: Packet) -> None:
        count[0] += 1
        original(packet)
        if count[0] % every == 0:
            original(packet)

    link._deliver = leaky  # type: ignore[method-assign]


def seed_ack_regression(receiver, after: int = 3) -> None:
    """Make ``receiver`` report a regressed cumulative ACK.

    After ``after`` ACKs, every subsequent ACK claims ``ack=0`` — the
    cumulative point moves backwards, which the
    ``seq-ack-monotonicity`` checker must flag.
    """
    original = receiver._send
    acks = [0]

    def regressed(kind, ack: int = -1, sack=(), echo_time: float = -1.0):
        if kind == PacketType.ACK:
            acks[0] += 1
            if acks[0] > after and ack > 0:
                ack = 0
        return original(kind, ack=ack, sack=sack, echo_time=echo_time)

    receiver._send = regressed  # type: ignore[method-assign]
