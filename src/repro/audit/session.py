"""The auditor core and the ``AuditSession`` context manager.

:class:`Auditor` ties the pieces together: every trace record is fed to
the lineage tracer, the flight recorder's ring, and each invariant
checker; a checker's violation gets its packet's causal chain attached
from the tracer and — the first time, when an output directory is
configured — triggers the post-mortem bundle.  A ``sim.crash`` record
triggers the bundle too, violations or not, so a crashed run leaves its
last moments on disk.

:class:`AuditSession` is the wiring: as a context manager it attaches
the auditor to whatever telemetry hub is ambient (composing with
``--telemetry``), or — when none is — installs itself as a minimal hub
carrying only a ring-bounded trace recorder.  Either way lineage events
are switched on for the duration and the previous state is restored on
exit.
"""

from __future__ import annotations

from typing import List, Optional

from repro.audit.invariants import Checker, Violation, default_checkers
from repro.audit.lineage import LineageTracer
from repro.audit.recorder import FlightRecorder
from repro.sim.trace import TraceRecorder
from repro.telemetry import context
from repro.telemetry.hub import DEFAULT_MAX_RECORDS
from repro.telemetry.schema import EV_SCHED_EXEC, EV_SIM_CRASH

__all__ = ["Auditor", "AuditSession"]

#: Post-mortems render at most this many events of the same-timestamp
#: group the run was inside when the bundle was written.
MAX_INSTANT_GROUP = 200


class Auditor:
    """Feeds the event stream to lineage, checkers, and the recorder.

    Parameters
    ----------
    checkers:
        Invariant checkers to run; defaults to the full suite from
        :func:`repro.audit.invariants.default_checkers`.
    out_dir:
        Post-mortem bundle directory.  When set, the bundle is written
        on the first violation (or crash); when None, violations are
        only collected in memory.
    ring_size / max_spans:
        Bounds for the flight-recorder ring and the lineage span store.
    """

    def __init__(self, checkers: Optional[List[Checker]] = None,
                 out_dir: Optional[str] = None, ring_size: int = 4000,
                 max_spans: int = 200_000) -> None:
        self.checkers = (list(checkers) if checkers is not None
                         else default_checkers())
        self.out_dir = out_dir
        self.tracer = LineageTracer(max_spans=max_spans)
        self.recorder = FlightRecorder(ring_size=ring_size)
        self.violations: List[Violation] = []
        self.events_audited = 0
        self._finalized = False
        # The same-timestamp event group currently executing, rendered
        # from v5 ``sched.exec`` provenance stamps ("entity callback
        # (seq N, parent M)").  Bounded: a post-mortem wants the local
        # tie-break context, not an unbounded same-instant burst.
        self._instant: List[str] = []
        self._instant_time: Optional[float] = None

    # ------------------------------------------------------------------
    # Stream intake
    # ------------------------------------------------------------------

    def observe(self, record) -> None:
        """Audit one trace record (the observer callback)."""
        self.events_audited += 1
        self.recorder.observe(record)
        self.tracer.observe(record)
        if record.kind == EV_SCHED_EXEC:
            self._track_instant(record)
        for checker in self.checkers:
            for violation in checker.observe(record):
                self._add(violation)
        if record.kind == EV_SIM_CRASH:
            self._dump(f"crash: {record.detail.get('error', '?')}")

    def finalize(self) -> "Auditor":
        """Flush end-of-stream checks; idempotent.  Returns self."""
        if self._finalized:
            return self
        self._finalized = True
        for checker in self.checkers:
            for violation in checker.finalize():
                self._add(violation)
        if self.violations:
            self._dump("violation")
        return self

    def _add(self, violation: Violation) -> None:
        if not violation.chain:
            span = None
            if violation.uid is not None:
                span = self.tracer.span(violation.uid)
            if span is None and (violation.flow is not None
                                 and violation.seq is not None):
                span = self.tracer.span_for_seq(violation.flow, violation.seq)
            if span is not None:
                violation.uid = span.uid
                violation.chain = self.tracer.render_chain(span.uid)
        self.violations.append(violation)
        self._dump("violation")

    def _track_instant(self, record) -> None:
        """Maintain the rendered group of events at the current instant."""
        if record.time != self._instant_time:
            self._instant_time = record.time
            self._instant = []
        if len(self._instant) < MAX_INSTANT_GROUP:
            detail = record.detail
            self._instant.append(
                f"t={record.time:.9f} {record.source} "
                f"{detail.get('callback', '?')} "
                f"(seq {detail.get('seq')}, parent {detail.get('parent')})")
        elif len(self._instant) == MAX_INSTANT_GROUP:
            self._instant.append("  ... group truncated")

    def _dump(self, reason: str) -> None:
        if self.out_dir is not None:
            self.recorder.dump(self.out_dir, self.violations,
                               tracer=self.tracer, reason=reason,
                               instant_group=list(self._instant))

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------

    @property
    def clean(self) -> bool:
        """True when no invariant was violated."""
        return not self.violations

    def report(self) -> str:
        """Human-readable audit summary."""
        lines = [
            f"audited {self.events_audited} events, "
            f"{len(self.tracer)} packet spans, "
            f"{len(self.checkers)} checkers",
        ]
        if self.clean:
            lines.append("all invariants hold")
        else:
            lines.append(f"{len(self.violations)} violation(s):")
            lines.extend(f"  {v.render()}" for v in self.violations)
            if self.recorder.bundle_dir:
                lines.append(f"post-mortem bundle: {self.recorder.bundle_dir}")
        return "\n".join(lines)


class AuditSession:
    """Context manager wiring an :class:`Auditor` into the trace stream.

    With a telemetry hub already active (``--telemetry``), the auditor
    piggybacks on its trace recorder: an observer is attached — which
    runs *before* kind filtering, so user ``--trace-kinds`` filters
    don't blind the audit — and lineage events are enabled.  With no
    hub active, the session becomes the ambient hub itself, carrying a
    ring-bounded trace recorder (same bound as a telemetry hub's);
    metrics and profiling stay off, so ``--audit`` alone costs the
    audit plus in-memory tracing, not full telemetry.
    """

    def __init__(self, out_dir: Optional[str] = None,
                 checkers: Optional[List[Checker]] = None,
                 ring_size: int = 4000, max_spans: int = 200_000) -> None:
        self.auditor = Auditor(checkers=checkers, out_dir=out_dir,
                               ring_size=ring_size, max_spans=max_spans)
        # Hub surface for Simulator pickup when we are the ambient hub.
        self.trace: Optional[TraceRecorder] = None
        self.metrics = None
        self.profiler = None
        self._host_trace: Optional[TraceRecorder] = None
        self._restore_lineage = False
        self._restore_provenance = False
        self._owns_context = False

    def __enter__(self) -> "AuditSession":
        hub = context.current_hub()
        if hub is not None and hub.trace is not None:
            self._host_trace = hub.trace
        else:
            # Same ring bound as a Telemetry hub's recorder: experiments
            # that read ``sim.trace.records()`` directly (fig3's
            # walk-through) keep working under a bare ``--audit``.
            self.trace = TraceRecorder(enabled=True,
                                       max_records=DEFAULT_MAX_RECORDS)
            self._host_trace = self.trace
            context.activate(self)
            self._owns_context = True
        self._restore_lineage = self._host_trace.lineage
        self._restore_provenance = getattr(self._host_trace,
                                           "provenance", False)
        self._host_trace.lineage = True
        # Provenance events feed the scheduler-nondeterminism checker
        # and give post-mortems their same-instant group context.
        self._host_trace.provenance = True
        self._host_trace.add_observer(self.auditor.observe)
        return self

    def __exit__(self, *exc) -> None:
        trace = self._host_trace
        if trace is not None:
            trace.remove_observer(self.auditor.observe)
            trace.lineage = self._restore_lineage
            trace.provenance = self._restore_provenance
        if self._owns_context:
            context.deactivate(self)
            self._owns_context = False
        self._host_trace = None
        self.auditor.finalize()

    # Convenience passthroughs -----------------------------------------

    @property
    def violations(self) -> List[Violation]:
        return self.auditor.violations

    @property
    def clean(self) -> bool:
        return self.auditor.clean

    def report(self) -> str:
        return self.auditor.report()
