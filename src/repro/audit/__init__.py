"""Runtime protocol auditing: lineage tracing + invariant checking.

The audit subsystem watches the telemetry event stream as a simulation
runs and checks the paper's per-packet causal properties — even pacing,
strictly reverse-ordered proactive retransmission, never resending
ACKed data, frontier-meet termination, packet conservation — as *live
invariants* instead of trusting the figures to look right.  Three
pieces:

* :mod:`repro.audit.lineage` — a packet lineage tracer that gives every
  packet a span (born at ``Host.send``), records its hop events, and
  links causal parents (the data packet behind an ACK, the original
  transmission behind a retransmit) into per-flow causal trees;
* :mod:`repro.audit.invariants` — pluggable checkers over the event
  stream producing structured :class:`Violation` records;
* :mod:`repro.audit.recorder` — a flight recorder keeping a bounded
  ring of recent events and dumping a post-mortem bundle (JSON
  violations + ASCII causal timeline) on the first violation or crash.

Use :class:`AuditSession` as a context manager (``with AuditSession():
run_experiment()``), the ``--audit`` flag on the experiments CLI, or
``python -m repro audit --replay trace.jsonl`` for offline replay.
"""

from repro.audit.invariants import (
    AckKnowledge,
    Checker,
    Violation,
    default_checkers,
)
from repro.audit.lineage import LineageTracer, PacketSpan
from repro.audit.recorder import FlightRecorder
from repro.audit.replay import iter_trace, replay
from repro.audit.session import Auditor, AuditSession

__all__ = [
    "AckKnowledge",
    "AuditSession",
    "Auditor",
    "Checker",
    "FlightRecorder",
    "LineageTracer",
    "PacketSpan",
    "Violation",
    "default_checkers",
    "iter_trace",
    "replay",
]
