"""Post-mortem flight recorder.

Keeps a bounded ring of the most recent trace records (every kind, not
just lineage events) and, when asked — first violation, simulator
crash, or explicit finalize — writes a post-mortem bundle:

* ``violations.json`` — the structured violations with causal chains;
* ``postmortem.txt`` — human-readable report: each violation, its
  packet's causal chain, and the ASCII causal timeline of the first
  offending flow;
* ``ring.jsonl`` — the raw event ring in trace JSONL format, replayable
  with ``python -m repro audit --replay``.

The recorder only ever dumps once per run; later violations are still
collected by the auditor but the bundle freezes the state around the
first failure, which is the one worth debugging.
"""

from __future__ import annotations

import json
import os
from collections import deque
from typing import Deque, List, Optional

from repro.telemetry.export import record_to_dict
from repro.telemetry.schema import SCHEMA_VERSION

__all__ = ["FlightRecorder"]

DEFAULT_RING_SIZE = 4000


class FlightRecorder:
    """Bounded event ring + one-shot post-mortem bundle writer."""

    def __init__(self, ring_size: int = DEFAULT_RING_SIZE) -> None:
        if ring_size <= 0:
            raise ValueError("ring_size must be positive")
        self._ring: Deque = deque(maxlen=ring_size)
        self.records_seen = 0
        self.dumped = False
        #: Directory of the written bundle, once dumped.
        self.bundle_dir: Optional[str] = None

    def observe(self, record) -> None:
        """Append one trace record to the ring."""
        self._ring.append(record)
        self.records_seen += 1

    def ring(self) -> List:
        """The retained records, oldest first."""
        return list(self._ring)

    def dump(self, out_dir: str, violations, tracer=None,
             reason: str = "violation",
             instant_group: Optional[List[str]] = None) -> Optional[str]:
        """Write the post-mortem bundle; no-op after the first dump.

        ``instant_group`` is the rendered same-timestamp event group the
        auditor was inside when the dump fired (entity + callback per
        executed event, from the v5 provenance stamps); it is appended
        to the post-mortem so tie-break context around the failure is
        on disk even when the ring has already wrapped past it.

        Returns the bundle directory, or None if already dumped.
        """
        if self.dumped:
            return None
        self.dumped = True
        os.makedirs(out_dir, exist_ok=True)
        self.bundle_dir = out_dir

        with open(os.path.join(out_dir, "violations.json"), "w",
                  encoding="utf-8") as fh:
            json.dump(
                {
                    "schema_version": SCHEMA_VERSION,
                    "reason": reason,
                    "violations": [v.to_dict() for v in violations],
                },
                fh, indent=2, sort_keys=True,
            )
            fh.write("\n")

        with open(os.path.join(out_dir, "ring.jsonl"), "w",
                  encoding="utf-8") as fh:
            for record in self._ring:
                fh.write(json.dumps(record_to_dict(record), sort_keys=True,
                                    separators=(",", ":"), default=str))
                fh.write("\n")

        with open(os.path.join(out_dir, "postmortem.txt"), "w",
                  encoding="utf-8") as fh:
            fh.write(self._report(violations, tracer, reason,
                                  instant_group))

        return out_dir

    def _report(self, violations, tracer, reason: str,
                instant_group: Optional[List[str]] = None) -> str:
        lines = [
            "repro.audit post-mortem bundle",
            f"reason: {reason}",
            f"events in ring: {len(self._ring)} "
            f"(of {self.records_seen} observed)",
            f"violations: {len(violations)}",
            "",
        ]
        for violation in violations:
            lines.append(violation.render())
            if violation.chain:
                lines.append("  causal chain:")
                lines.extend(f"    {line}" for line in violation.chain)
            lines.append("")
        flow = next((v.flow for v in violations if v.flow is not None), None)
        if tracer is not None and flow is not None:
            lines.append(tracer.render_flow(flow))
            lines.append("")
        if instant_group:
            lines.append("same-timestamp event group at the dump instant "
                         "(execution order):")
            lines.extend(f"  {line}" for line in instant_group)
            lines.append("")
        return "\n".join(lines)
