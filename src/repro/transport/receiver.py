"""The receiver endpoint.

Receivers are passive: they answer the handshake, ACK every data packet
(cumulative + up to three SACK ranges — the UDT-with-Selective-ACK
behaviour the paper's prototypes were built on), and report completion
when every payload byte has arrived.

The flow's total size rides on the SYN, standing in for an
application-level content length, so the receiver knows when it is done.
"""

from __future__ import annotations

from enum import Enum
from typing import Callable, Optional

from repro.errors import TransportError
from repro.net.monitor import FlowThroughputMonitor
from repro.net.packet import Packet, PacketType
from repro.telemetry.schema import EV_PKT_ACK_GEN
from repro.transport.config import TransportConfig
from repro.transport.flow import segments_for
from repro.transport.sacks import ReceiveTracker

__all__ = ["Receiver", "ReceiverState"]


class ReceiverState(Enum):
    """Receiver connection states."""

    LISTEN = "listen"
    SYN_RECEIVED = "syn_received"
    ESTABLISHED = "established"
    COMPLETE = "complete"


class Receiver:
    """One receiving endpoint bound to ``(host, flow_id)``.

    Parameters
    ----------
    on_complete:
        Called once, with this receiver, when the last payload byte
        arrives.
    throughput_monitor:
        Optional :class:`FlowThroughputMonitor` fed with every *new*
        payload delivery (Fig. 15 timelines).
    """

    def __init__(
        self,
        sim,
        host,
        flow_id: int,
        config: Optional[TransportConfig] = None,
        on_complete: Optional[Callable[["Receiver"], None]] = None,
        throughput_monitor: Optional[FlowThroughputMonitor] = None,
    ) -> None:
        self.sim = sim
        self.host = host
        self.flow_id = flow_id
        self.config = config if config is not None else TransportConfig()
        self.on_complete = on_complete
        self.throughput_monitor = throughput_monitor
        self.state = ReceiverState.LISTEN
        self.tracker: Optional[ReceiveTracker] = None
        self.peer: Optional[str] = None
        self.flow_bytes: Optional[int] = None
        self.complete_time: Optional[float] = None
        self.acks_sent = 0
        #: Corrupted packets discarded on arrival (chaos runs); the
        #: sender recovers through normal RTO/SACK machinery.
        self.corrupted_discards = 0
        host.register(flow_id, self)

    # ------------------------------------------------------------------

    def on_packet(self, packet: Packet) -> None:
        """Host delivery entry point."""
        if packet.corrupted:
            # Checksum failure: discard before *any* parsing — corrupted
            # contents (a SYN's flow size, a fast-open segment) must not
            # initialize connection state.
            self.corrupted_discards += 1
            return
        if packet.kind == PacketType.SYN:
            self._handle_syn(packet)
        elif packet.kind == PacketType.HANDSHAKE_ACK:
            if self.state == ReceiverState.SYN_RECEIVED:
                self.state = ReceiverState.ESTABLISHED
        elif packet.is_data:
            self._handle_data(packet)
        # Receivers ignore stray ACKs (e.g. mis-routed duplicates).

    # ------------------------------------------------------------------

    def _handle_syn(self, packet: Packet) -> None:
        if self.tracker is None:
            if packet.flow_bytes <= 0:
                raise TransportError("SYN must carry the flow size")
            self.flow_bytes = packet.flow_bytes
            self.tracker = ReceiveTracker(segments_for(packet.flow_bytes))
            self.peer = packet.src
            self.state = ReceiverState.SYN_RECEIVED
        # Duplicate SYNs (lost SYN-ACK) get a fresh SYN-ACK.
        self._send(
            PacketType.SYN_ACK,
            echo_time=packet.echo_time,
        )

    def _handle_data(self, packet: Packet) -> None:
        if self.tracker is None:
            if packet.flow_bytes > 0:
                # Fast-open data beat (or replaced) the SYN; it carries
                # the content length, so initialize from it.
                self.flow_bytes = packet.flow_bytes
                self.tracker = ReceiveTracker(segments_for(packet.flow_bytes))
                self.peer = packet.src
                self.state = ReceiverState.ESTABLISHED
            else:
                # Data cannot legally precede the handshake; a lost SYN
                # means the sender retries before sending data.
                raise TransportError(
                    f"flow {self.flow_id}: data before SYN at {self.host.name}"
                )
        if self.state == ReceiverState.SYN_RECEIVED:
            # The handshake ACK was lost but data proves establishment.
            self.state = ReceiverState.ESTABLISHED
        was_new = self.tracker.add(packet.seq, now=self.sim.now)
        if was_new and self.throughput_monitor is not None:
            self.throughput_monitor.on_delivery(self.sim.now, packet)
        # Karn's rule: only first transmissions carry a timestamp, so
        # echoing blindly is safe (retransmissions carry -1).
        ack_packet = self._send(
            PacketType.ACK,
            ack=self.tracker.cum,
            sack=self.tracker.sack_blocks(),
            echo_time=packet.echo_time,
        )
        trace = self.sim.trace
        if trace.lineage:
            # The causal edge data packet -> ACK: ``parent`` is the data
            # packet that triggered this ACK.
            trace.record(
                self.sim.now, EV_PKT_ACK_GEN, self.host.name,
                parent=packet.uid, ack=ack_packet.ack,
                **ack_packet.lineage_detail(),
            )
        if self.tracker.complete and self.state != ReceiverState.COMPLETE:
            self.state = ReceiverState.COMPLETE
            self.complete_time = self.sim.now
            if self.on_complete is not None:
                self.on_complete(self)

    # ------------------------------------------------------------------

    def _send(self, kind: PacketType, ack: int = -1, sack=(), echo_time: float = -1.0) -> Packet:
        if self.peer is None:
            raise TransportError("receiver has no peer yet")
        packet = Packet(
            src=self.host.name,
            dst=self.peer,
            flow_id=self.flow_id,
            kind=kind,
            size=self.config.header_size,
            ack=ack,
            sack=tuple(sack),
            echo_time=echo_time,
        )
        if kind == PacketType.ACK:
            self.acks_sent += 1
        self.host.send(packet)
        return packet

    # ------------------------------------------------------------------

    @property
    def duplicates(self) -> int:
        """Duplicate data packets seen so far."""
        return self.tracker.duplicates if self.tracker is not None else 0

    def close(self) -> None:
        """Unbind from the host (frees the flow id)."""
        self.host.unregister(self.flow_id)
