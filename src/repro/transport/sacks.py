"""Selective-acknowledgment bookkeeping.

Two sides:

* :class:`SendScoreboard` — per-segment state at the sender
  (UNSENT / SENT / ACKED / LOST), cumulative-ACK frontier, SACK marking,
  RFC 6675-style loss inference and the ``pipe`` (in-flight) estimate.
* :class:`ReceiveTracker` — received-segment tracking at the receiver,
  cumulative frontier and SACK-block generation (up to three ranges, the
  block containing the most recent arrival first, as real stacks do).

Both are pure data structures with no simulator dependency, so they are
property-tested heavily (see ``tests/transport/test_sacks.py``).

Per-segment scalar state (send times, ACK times, retransmit counts,
SACK marks) lives in struct-of-arrays storage: flat typed arrays
indexed by sequence number instead of per-segment Python objects or
lists of boxed floats.  The default backend is the stdlib :mod:`array`
module (8 bytes per slot, no per-element object header); setting
``HALFBACK_NUMPY=1`` in the environment switches allocation to numpy
when it is importable, which lets analysis code view the columns
zero-copy.  Both backends store IEEE doubles / 64-bit ints, so the
arithmetic — and therefore every fingerprinted outcome — is identical.
"""

from __future__ import annotations

import os
from array import array
from enum import IntEnum
from heapq import heapify, heappop, heappush
from typing import List, Optional, Sequence, Tuple

from repro.errors import TransportError

__all__ = ["SegmentState", "SendScoreboard", "ReceiveTracker", "IntervalSet",
           "array_backend"]

Range = Tuple[int, int]  # half-open [start, end)

_np = None
if os.environ.get("HALFBACK_NUMPY") == "1":
    # Import only on opt-in: pulling numpy in costs ~100 ms of process
    # startup, which dominates short CLI runs that never touch it.
    try:  # pragma: no cover - availability depends on the environment
        import numpy as _np
    except ImportError:  # pragma: no cover
        _np = None

#: Active struct-of-arrays backend: ``"numpy"`` only when numpy is both
#: importable and opted into via ``HALFBACK_NUMPY=1``.
_USE_NUMPY = _np is not None


def array_backend() -> str:
    """Name of the per-segment column storage backend in use."""
    return "numpy" if _USE_NUMPY else "array"


def _float_column(n: int, fill: float = 0.0) -> "Sequence[float]":
    """An n-slot column of IEEE doubles, initialized to ``fill``."""
    if _USE_NUMPY:
        return _np.full(n, fill, dtype=_np.float64)
    if fill == 0.0:
        return array("d", bytes(8 * n))
    return array("d", [fill]) * n


def _int_column(n: int) -> "Sequence[int]":
    """A zeroed n-slot column of signed 64-bit ints."""
    if _USE_NUMPY:
        return _np.zeros(n, dtype=_np.int64)
    return array("q", bytes(8 * n))


class SegmentState(IntEnum):
    """Sender-side per-segment state."""

    UNSENT = 0
    SENT = 1
    ACKED = 2
    LOST = 3


# Plain ints for the bytearray hot paths: comparing a bytearray element
# against an IntEnum member goes through Enum.__eq__; these do not.
_UNSENT = int(SegmentState.UNSENT)
_SENT = int(SegmentState.SENT)
_ACKED = int(SegmentState.ACKED)
_LOST = int(SegmentState.LOST)


class IntervalSet:
    """A set of integers stored as sorted disjoint half-open ranges."""

    def __init__(self) -> None:
        self._ranges: List[List[int]] = []

    def add(self, value: int) -> bool:
        """Insert ``value``; returns False if it was already present."""
        ranges = self._ranges
        lo, hi = 0, len(ranges)
        while lo < hi:
            mid = (lo + hi) // 2
            if ranges[mid][1] < value:
                lo = mid + 1
            else:
                hi = mid
        # ranges[lo] is the first range with end >= value.
        if lo < len(ranges) and ranges[lo][0] <= value < ranges[lo][1]:
            return False
        # Try to extend the range ending exactly at value.
        if lo < len(ranges) and ranges[lo][0] == value + 1:
            ranges[lo][0] = value
            self._merge_left(lo)
            return True
        if lo < len(ranges) and ranges[lo][1] == value:
            ranges[lo][1] = value + 1
            self._merge_right(lo)
            return True
        ranges.insert(lo, [value, value + 1])
        return True

    def _merge_left(self, index: int) -> None:
        if index > 0 and self._ranges[index - 1][1] == self._ranges[index][0]:
            self._ranges[index - 1][1] = self._ranges[index][1]
            del self._ranges[index]

    def _merge_right(self, index: int) -> None:
        if (index + 1 < len(self._ranges)
                and self._ranges[index][1] == self._ranges[index + 1][0]):
            self._ranges[index][1] = self._ranges[index + 1][1]
            del self._ranges[index + 1]

    def __contains__(self, value: int) -> bool:
        for start, end in self._ranges:
            if start <= value < end:
                return True
            if start > value:
                return False
        return False

    def prune_below(self, floor: int) -> None:
        """Drop all members smaller than ``floor``."""
        ranges = self._ranges
        while ranges and ranges[0][1] <= floor:
            ranges.pop(0)
        if ranges and ranges[0][0] < floor:
            ranges[0][0] = floor

    def ranges(self) -> List[Range]:
        """The disjoint ranges, ascending."""
        return [(s, e) for s, e in self._ranges]

    def range_containing(self, value: int) -> Optional[Range]:
        """The range holding ``value``, if any."""
        for start, end in self._ranges:
            if start <= value < end:
                return (start, end)
        return None

    def __len__(self) -> int:
        return sum(e - s for s, e in self._ranges)


class SendScoreboard:
    """Sender-side segment state machine.

    ``n_segments`` is fixed at construction.  ``cum_ack`` is the lowest
    unacknowledged segment index (the "next expected" the receiver
    reports); the flow is fully acknowledged when ``cum_ack == n_segments``.

    The per-ACK paths are incremental: segments already ACKed are
    skipped at C speed (a ``bytearray.find`` over the not-yet-acked
    mask), loss inference drains a lazily-validated min-heap of
    ``(sack mark, seq)`` evidence entries instead of rescanning the
    window, and ``first_lost`` peeks a min-heap of LOST candidates.
    Per-ACK cost is O(newly-acked + log window) rather than O(window).
    """

    #: Duplicate-ACK / reordering threshold for SACK loss inference.
    DUPTHRESH = 3

    def __init__(self, n_segments: int) -> None:
        if n_segments <= 0:
            raise TransportError("scoreboard needs at least one segment")
        self.n_segments = n_segments
        self._state = bytearray(n_segments)  # SegmentState values
        self.cum_ack = 0
        self.highest_sent = -1
        self.highest_sacked = -1
        self.acked_count = 0
        self._pipe = 0
        # --- struct-of-arrays per-segment columns (see module docstring)
        # SACK frontier observed when each segment was last (re)sent.
        # Loss inference demands DUPTHRESH segments SACKed *beyond* this
        # mark, so a retransmission is not instantly re-declared lost on
        # stale evidence (the RFC 6675 retransmission-tracking rule; see
        # detect_lost).
        self._sack_mark = _int_column(n_segments)
        # Simulated time of each segment's last (re)transmission, for
        # the round-based naive re-marking rule (see detect_lost).
        self._sent_time = _float_column(n_segments)
        # Simulated time each segment was first acknowledged; -1 until
        # then (valid simulated times are non-negative).
        self._ack_time = _float_column(n_segments, fill=-1.0)
        # Retransmissions per segment (first transmission not counted).
        self._rtx_count = _int_column(n_segments)
        # 1 for every segment not yet ACKED.  ``bytearray.find(1, ...)``
        # skips arbitrarily long acked runs at memchr speed, which is
        # what makes re-announced SACK ranges and the cum-ack advance
        # O(newly-acked) instead of O(range).
        self._unacked = bytearray(b"\x01") * n_segments
        # Loss-evidence min-heap of (sack mark, seq), one entry pushed
        # per (re)transmission.  An entry is *live* while the segment is
        # still SENT and the mark matches its latest transmission;
        # detect_lost pops entries whose mark has DUPTHRESH SACKed
        # segments beyond it and validates lazily (stale entries are
        # discarded).  Marks only need draining once: highest_sacked is
        # monotone, so an entry that stays above the threshold today is
        # still in the heap tomorrow.
        self._evidence_heap: List[Tuple[int, int]] = []
        # Min-heap of segments that have been marked LOST, with a
        # membership flag per seq so each appears at most once.  A LOST
        # segment that is retransmitted flips back to SENT and its heap
        # entry goes stale; first_lost validates on peek.
        self._lost_heap: List[int] = []
        self._in_lost_heap = bytearray(n_segments)
        # Monotone scan pointer for next_unsent: no state ever reverts
        # to UNSENT, so skipping non-UNSENT segments is amortized O(1)
        # even when an out-of-order send leaves a hole below
        # highest_sent.
        self._next_unsent = 0

    # -- queries --------------------------------------------------------

    def state(self, seq: int) -> SegmentState:
        """State of segment ``seq``."""
        return SegmentState(self._state[seq])

    def is_acked(self, seq: int) -> bool:
        """True once ``seq`` has been cumulatively or selectively ACKed."""
        return self._state[seq] == SegmentState.ACKED

    @property
    def all_acked(self) -> bool:
        """True when every segment is acknowledged."""
        return self.acked_count == self.n_segments

    @property
    def pipe(self) -> int:
        """Segments believed in flight (SENT and neither ACKED nor LOST)."""
        return self._pipe

    def next_unsent(self) -> Optional[int]:
        """Lowest UNSENT segment, or None.

        First transmissions are normally in order, but a tail probe may
        transmit above a not-yet-sent segment; the hole below
        ``highest_sent`` must still be offered here or the flow wedges
        (nothing in flight, nothing LOST, "nothing" unsent).
        """
        state = self._state
        seq = self._next_unsent
        n = self.n_segments
        while seq < n and state[seq] != _UNSENT:
            seq += 1
        self._next_unsent = seq
        return seq if seq < n else None

    def lost_segments(self) -> List[int]:
        """Segments currently marked LOST, ascending."""
        state = self._state
        return sorted(seq for seq in self._lost_heap if state[seq] == _LOST)

    def first_lost(self) -> Optional[int]:
        """Lowest segment currently marked LOST, or None.

        O(1) when the candidate heap's head is live; stale heads
        (retransmitted or since-ACKed segments) are popped lazily.
        """
        heap = self._lost_heap
        state = self._state
        while heap:
            seq = heap[0]
            if state[seq] == _LOST:
                return seq
            heappop(heap)
            self._in_lost_heap[seq] = 0
        return None

    def unacked_segments(self) -> List[int]:
        """All segments not yet ACKed (any non-ACKED state), ascending."""
        return [i for i in range(self.cum_ack, self.n_segments)
                if self._state[i] != SegmentState.ACKED]

    def send_time(self, seq: int) -> float:
        """Simulated time of ``seq``'s last (re)transmission (0.0 if
        never sent)."""
        return float(self._sent_time[seq])

    def ack_time(self, seq: int) -> Optional[float]:
        """Simulated time ``seq`` was first acknowledged, or None."""
        when = self._ack_time[seq]
        return float(when) if when >= 0.0 else None

    def retransmit_count(self, seq: int) -> int:
        """Retransmissions of ``seq`` (first transmission not counted)."""
        return int(self._rtx_count[seq])

    def rtt_sample(self, seq: int) -> Optional[float]:
        """ACK time minus send time for ``seq``, or None.

        Karn's rule: a retransmitted segment's sample is ambiguous (the
        ACK may answer either transmission), so only never-retransmitted
        acknowledged segments yield one.
        """
        when = self._ack_time[seq]
        if when < 0.0 or self._rtx_count[seq]:
            return None
        return float(when - self._sent_time[seq])

    # -- transitions ----------------------------------------------------

    def mark_sent(self, seq: int, time: float = 0.0) -> None:
        """Record a (re)transmission of ``seq`` at simulated ``time``."""
        if not 0 <= seq < self.n_segments:
            raise TransportError(f"segment {seq} out of range")
        state = self._state[seq]
        if state == _ACKED:
            # Proactive retransmission may race an ACK; keep ACKED.
            return
        if state != _SENT:
            self._pipe += 1
        if state != _UNSENT:
            # SENT or LOST: this is a retransmission.
            self._rtx_count[seq] += 1
        self._state[seq] = _SENT
        mark = self.highest_sacked
        if seq > mark:
            mark = seq
        self._sack_mark[seq] = mark
        self._sent_time[seq] = time
        heappush(self._evidence_heap, (mark, seq))
        if seq > self.highest_sent:
            self.highest_sent = seq

    def _mark_acked(self, seq: int, now: float) -> bool:
        state = self._state[seq]
        if state == _ACKED:
            return False
        if state == _SENT:
            self._pipe -= 1
        self._state[seq] = _ACKED
        self._unacked[seq] = 0
        self._ack_time[seq] = now
        self.acked_count += 1
        return True

    def on_ack(self, cum: int, sack: Sequence[Range] = (),
               now: float = 0.0) -> List[int]:
        """Apply one ACK.  ``cum`` is the next-expected segment index;
        ``now`` (the simulated arrival instant) is stamped into the
        ACK-time column for every newly-acknowledged segment.

        Returns the segments newly acknowledged by this ACK, ascending.

        Already-acked spans — a cumulative ACK re-covering old ground,
        or SACK ranges re-announced on every ACK until the frontier
        passes them — are skipped via ``bytearray.find`` over the
        not-yet-acked mask, so the cost is O(newly-acked), not O(range).
        """
        if cum > self.n_segments:
            raise TransportError(f"cumulative ack {cum} beyond flow end")
        newly: List[int] = []
        find_unacked = self._unacked.find
        seq = find_unacked(1, self.cum_ack, cum)
        while seq != -1:
            self._mark_acked(seq, now)
            newly.append(seq)
            seq = find_unacked(1, seq + 1, cum)
        if cum > self.cum_ack:
            self.cum_ack = cum
        for start, end in sack:
            if start < 0 or end > self.n_segments or start >= end:
                raise TransportError(f"bad SACK range ({start}, {end})")
            seq = find_unacked(1, start, end)
            while seq != -1:
                self._mark_acked(seq, now)
                newly.append(seq)
                seq = find_unacked(1, seq + 1, end)
            if end - 1 > self.highest_sacked:
                self.highest_sacked = end - 1
        # Advance cum_ack over the selectively-acked prefix (the next
        # not-yet-acked segment, found at C speed).
        frontier = find_unacked(1, self.cum_ack)
        self.cum_ack = frontier if frontier != -1 else self.n_segments
        if cum - 1 > self.highest_sacked:
            self.highest_sacked = cum - 1
        newly.sort()
        return newly

    def _declare_lost(self, seq: int) -> None:
        self._state[seq] = _LOST
        self._pipe -= 1
        if not self._in_lost_heap[seq]:
            self._in_lost_heap[seq] = 1
            heappush(self._lost_heap, seq)

    def detect_lost(
        self,
        track_retransmissions: bool = True,
        now: float = 0.0,
        rtx_round: Optional[float] = None,
    ) -> List[int]:
        """Infer losses from SACK information.

        Baseline rule (RFC 6675-style retransmission tracking): a SENT
        segment is deemed LOST once at least DUPTHRESH segments *beyond
        its last-transmission SACK mark* have been SACKed
        (``highest_sacked >= mark + DUPTHRESH``; for first transmissions
        the mark is the sequence number itself).  The mark requirement
        prevents the classic storm where a fresh retransmission is
        instantly re-declared lost on stale SACK evidence.

        The baseline rule is evaluated incrementally: each transmission
        pushed a ``(mark, seq)`` entry onto the evidence heap, and since
        ``highest_sacked`` is monotone, exactly the entries whose mark
        has crossed the DUPTHRESH line need popping — everything else
        stays put for a later ACK.  Stale entries (the segment was since
        ACKed, or retransmitted under a newer mark) are discarded on
        pop.  The mark is always >= the sequence number, so a popped
        entry's segment automatically sits DUPTHRESH below the SACK
        frontier — the classic "ceiling" bound needs no separate check.

        With ``track_retransmissions=False`` the naive round-based rule
        applies additionally: a SENT segment DUPTHRESH below the SACK
        frontier whose last transmission is older than ``rtx_round``
        (callers pass ~1 SRTT) is re-declared lost even without fresh
        evidence — one recovery round per RTT, so "each lost packet may
        require multiple retransmissions" (the paper's JumpStart
        behaviour).  The age sweep inherently revisits every in-flight
        segment below the frontier, so this mode keeps the bounded scan.

        Returns the segments newly marked LOST, ascending.
        """
        newly: List[int] = []
        if track_retransmissions:
            heap = self._evidence_heap
            threshold = self.highest_sacked - self.DUPTHRESH
            state = self._state
            sack_mark = self._sack_mark
            while heap and heap[0][0] <= threshold:
                mark, seq = heappop(heap)
                if state[seq] != _SENT or sack_mark[seq] != mark:
                    continue  # stale: since ACKed/LOST or resent anew
                self._declare_lost(seq)
                newly.append(seq)
            newly.sort()
            return newly
        ceiling = self.highest_sacked - self.DUPTHRESH + 1
        for seq in range(self.cum_ack, max(self.cum_ack, ceiling)):
            if self._state[seq] != _SENT:
                continue
            fresh_evidence = (
                self.highest_sacked >= self._sack_mark[seq] + self.DUPTHRESH
            )
            stale_round = (
                rtx_round is not None
                and now - self._sent_time[seq] >= rtx_round
            )
            if not fresh_evidence and not stale_round:
                continue
            self._declare_lost(seq)
            newly.append(seq)
        return newly

    def mark_lost(self, seq: int) -> bool:
        """Explicitly mark one SENT segment LOST (RTO path).  Returns
        False if it was not in SENT state."""
        if self._state[seq] != _SENT:
            return False
        self._declare_lost(seq)
        return True

    def mark_all_in_flight_lost(self) -> int:
        """RTO: consider everything unacked lost.  Returns count marked."""
        count = 0
        for seq in range(self.cum_ack, min(self.highest_sent + 1, self.n_segments)):
            if self._state[seq] == _SENT:
                self._declare_lost(seq)
                count += 1
        return count


class ReceiveTracker:
    """Receiver-side reassembly state."""

    def __init__(self, n_segments: int) -> None:
        if n_segments <= 0:
            raise TransportError("tracker needs at least one segment")
        self.n_segments = n_segments
        self._received = bytearray(n_segments)
        # First-arrival time per segment; -1 until it arrives (see the
        # struct-of-arrays note in the module docstring).
        self._arrival_time = _float_column(n_segments, fill=-1.0)
        self._out_of_order = IntervalSet()
        self.cum = 0  # next expected segment
        self.count = 0
        self.duplicates = 0
        self._last_new: Optional[int] = None

    def add(self, seq: int, now: float = 0.0) -> bool:
        """Record arrival of segment ``seq`` at simulated time ``now``;
        False for duplicates (their timestamps are not recorded — the
        column holds first arrivals, matching FCT semantics)."""
        if not 0 <= seq < self.n_segments:
            raise TransportError(f"segment {seq} out of range")
        if self._received[seq]:
            self.duplicates += 1
            return False
        self._received[seq] = 1
        self._arrival_time[seq] = now
        self.count += 1
        self._last_new = seq
        if seq == self.cum:
            while self.cum < self.n_segments and self._received[self.cum]:
                self.cum += 1
            self._out_of_order.prune_below(self.cum)
        else:
            self._out_of_order.add(seq)
        return True

    @property
    def complete(self) -> bool:
        """True once every segment has arrived."""
        return self.count == self.n_segments

    def arrival_time(self, seq: int) -> Optional[float]:
        """Simulated time ``seq`` first arrived, or None."""
        when = self._arrival_time[seq]
        return float(when) if when >= 0.0 else None

    def missing(self) -> List[int]:
        """Segments not yet received, ascending."""
        return [i for i in range(self.n_segments) if not self._received[i]]

    def sack_blocks(self, max_blocks: int = 3) -> Tuple[Range, ...]:
        """Up to ``max_blocks`` SACK ranges above the cumulative point.

        The block containing the most recent new arrival is reported
        first (mirroring real stacks), then the highest remaining blocks.
        """
        self._out_of_order.prune_below(self.cum)
        ranges = self._out_of_order.ranges()
        if not ranges:
            return ()
        ordered: List[Range] = []
        if self._last_new is not None and self._last_new >= self.cum:
            first = self._out_of_order.range_containing(self._last_new)
            if first is not None:
                ordered.append(first)
        for candidate in reversed(ranges):  # highest first
            if candidate not in ordered:
                ordered.append(candidate)
            if len(ordered) >= max_blocks:
                break
        return tuple(ordered[:max_blocks])
