"""RTT estimation and retransmission-timeout computation (RFC 6298 style).

The estimator keeps SRTT and RTTVAR with the classic EWMA gains and
derives ``RTO = SRTT + 4 * RTTVAR`` clamped to configurable bounds.
Exponential backoff on consecutive timeouts is handled here too, because
every protocol in the paper shares it.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ConfigurationError

__all__ = ["RttEstimator"]

ALPHA = 0.125  # gain for SRTT
BETA = 0.25    # gain for RTTVAR


class RttEstimator:
    """SRTT/RTTVAR tracker with RTO backoff.

    Parameters
    ----------
    initial_rto:
        RTO used before the first RTT sample (RFC 6298 says 1 s).
    min_rto, max_rto:
        Clamp bounds for the computed RTO.  The 1 s floor follows RFC
        6298 and makes timeouts the expensive event the paper describes;
        pass 0.2 for a Linux-flavoured floor.
    """

    def __init__(
        self,
        initial_rto: float = 1.0,
        min_rto: float = 1.0,
        max_rto: float = 60.0,
    ) -> None:
        if not 0 < min_rto <= max_rto:
            raise ConfigurationError("need 0 < min_rto <= max_rto")
        if initial_rto <= 0:
            raise ConfigurationError("initial_rto must be positive")
        self.initial_rto = initial_rto
        self.min_rto = min_rto
        self.max_rto = max_rto
        self.srtt: Optional[float] = None
        self.rttvar: Optional[float] = None
        self._backoff = 1.0
        self.samples = 0

    # ------------------------------------------------------------------

    def sample(self, rtt: float) -> None:
        """Feed one RTT measurement (seconds).

        Senders must only sample unambiguous measurements (Karn's rule:
        never from a retransmitted segment); the transport enforces that
        by echoing timestamps only stamped on first transmissions.
        """
        if rtt < 0:
            raise ConfigurationError(f"negative RTT sample: {rtt}")
        if self.srtt is None:
            self.srtt = rtt
            self.rttvar = rtt / 2.0
        else:
            assert self.rttvar is not None
            self.rttvar = (1 - BETA) * self.rttvar + BETA * abs(self.srtt - rtt)
            self.srtt = (1 - ALPHA) * self.srtt + ALPHA * rtt
        self.samples += 1
        # A valid sample ends any backoff episode.
        self._backoff = 1.0

    @property
    def rto(self) -> float:
        """Current retransmission timeout, with backoff applied."""
        if self.srtt is None:
            base = self.initial_rto
        else:
            assert self.rttvar is not None
            base = self.srtt + 4.0 * self.rttvar
        return min(max(base * self._backoff, self.min_rto), self.max_rto)

    def on_timeout(self) -> None:
        """Double the RTO (bounded by ``max_rto``) after an expiry."""
        self._backoff = min(self._backoff * 2.0, self.max_rto / self.min_rto)

    @property
    def backoff_factor(self) -> float:
        """Current exponential-backoff multiplier."""
        return self._backoff
