"""Packet pacing.

:class:`Pacer` releases queued items at a byte rate: consecutive
releases of sizes ``s1, s2, ...`` are separated by ``s_i / rate``
seconds.  JumpStart and Halfback use it to spread a whole short flow
evenly across one RTT; PCP uses it for probe trains.

The pacer releases the first queued item immediately when started from
idle (pacing bounds the *rate*, it does not add initial delay).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Optional, Tuple

from repro.errors import ConfigurationError

__all__ = ["Pacer", "pacing_rate_for"]


def pacing_rate_for(total_bytes: int, interval: float) -> float:
    """Rate (bytes/second) that spreads ``total_bytes`` over ``interval``.

    This is how JumpStart/Halfback derive their pacing rate: the flow's
    paced bytes divided by the handshake RTT.
    """
    if total_bytes <= 0:
        raise ConfigurationError("total_bytes must be positive")
    if interval <= 0:
        raise ConfigurationError("interval must be positive")
    return total_bytes / interval


class Pacer:
    """Releases queued (item, size) pairs at ``rate`` bytes/second.

    Parameters
    ----------
    sim:
        Simulator used for scheduling.
    rate:
        Initial release rate in bytes/second.
    release:
        Callback invoked with each item as it is released.
    on_idle:
        Optional callback invoked when the queue drains (after the final
        release's spacing has elapsed — i.e. when the pacer would have
        been able to send more).
    """

    def __init__(
        self,
        sim,
        rate: float,
        release: Callable[[Any], None],
        on_idle: Optional[Callable[[], None]] = None,
    ) -> None:
        if rate <= 0:
            raise ConfigurationError("pacing rate must be positive")
        self.sim = sim
        self.rate = rate
        self.release = release
        self.on_idle = on_idle
        self._queue: Deque[Tuple[Any, int]] = deque()
        self._busy = False
        self.released = 0
        self.released_bytes = 0

    # ------------------------------------------------------------------

    @property
    def busy(self) -> bool:
        """True while releases are pending or spacing is elapsing."""
        return self._busy

    @property
    def backlog(self) -> int:
        """Items queued and not yet released."""
        return len(self._queue)

    def set_rate(self, rate: float) -> None:
        """Change the release rate; affects spacing from the next release."""
        if rate <= 0:
            raise ConfigurationError("pacing rate must be positive")
        self.rate = rate

    def enqueue(self, item: Any, size: int) -> None:
        """Queue ``item`` (``size`` bytes) for paced release."""
        if size <= 0:
            raise ConfigurationError("item size must be positive")
        self._queue.append((item, size))
        if not self._busy:
            self._busy = True
            self._release_next()

    def _release_next(self) -> None:
        if not self._queue:
            self._busy = False
            if self.on_idle is not None:
                self.on_idle()
            return
        item, size = self._queue.popleft()
        self.released += 1
        self.released_bytes += size
        self.release(item)
        # Space the *next* release by this item's serialization time.
        self.sim.schedule(size / self.rate, self._release_next)

    def flush(self) -> int:
        """Discard the backlog without releasing; returns items dropped."""
        dropped = len(self._queue)
        self._queue.clear()
        return dropped
