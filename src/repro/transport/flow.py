"""Flow descriptions and completion records.

A :class:`FlowSpec` is the immutable description of one transfer (who,
how much, when, with which protocol); a :class:`FlowRecord` is filled in
as the flow runs and holds everything the experiment harness needs:
completion time, retransmission counts, timeouts, RTT estimates.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import ConfigurationError
from repro.units import MSS

__all__ = ["FlowSpec", "FlowRecord", "next_flow_id", "segments_for"]

_flow_ids = itertools.count(1)


def next_flow_id() -> int:
    """Allocate a globally unique flow id."""
    return next(_flow_ids)


def segments_for(size_bytes: int) -> int:
    """Number of MSS-sized segments needed to carry ``size_bytes``."""
    if size_bytes <= 0:
        raise ConfigurationError("flow size must be positive")
    return math.ceil(size_bytes / MSS)


@dataclass(frozen=True)
class FlowSpec:
    """Immutable description of one transfer.

    Attributes
    ----------
    flow_id:
        Unique id; also the demultiplexing key on both hosts.
    src, dst:
        Sender and receiver host names.
    size:
        Payload bytes to transfer.
    protocol:
        Registry name of the sender scheme (e.g. ``"halfback"``).
    start_time:
        Simulated time at which the sender initiates the handshake.
    kind:
        Free-form tag used by experiments (``"short"``, ``"long"``,
        ``"web-object"`` ...).
    """

    flow_id: int
    src: str
    dst: str
    size: int
    protocol: str
    start_time: float = 0.0
    kind: str = "short"

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ConfigurationError("flow size must be positive")
        if self.start_time < 0:
            raise ConfigurationError("start time must be non-negative")

    @property
    def n_segments(self) -> int:
        """Number of data segments in this flow."""
        return segments_for(self.size)


@dataclass
class FlowRecord:
    """Mutable per-flow measurement record."""

    spec: FlowSpec
    #: Time the sender sent its first SYN.
    syn_time: Optional[float] = None
    #: Time the sender completed the handshake.
    established_time: Optional[float] = None
    #: Time the receiver held every payload byte.
    complete_time: Optional[float] = None
    #: Time the sender saw everything ACKed (>= complete_time).
    sender_done_time: Optional[float] = None
    #: First-transmission data packets sent.
    data_packets_sent: int = 0
    #: Normal (reactive) retransmissions: fast retransmit, RTO, probe.
    normal_retransmissions: int = 0
    #: Proactive retransmissions (ROPR / Proactive TCP duplicates).
    proactive_retransmissions: int = 0
    #: RTO expirations.
    timeouts: int = 0
    #: SYN retransmissions.
    syn_retransmissions: int = 0
    #: Duplicate data packets seen by the receiver.
    duplicate_receptions: int = 0
    #: Final smoothed RTT estimate (seconds).
    final_srtt: Optional[float] = None
    #: RTT sampled from the handshake (seconds).
    handshake_rtt: Optional[float] = None
    #: Corrupted packets the *sender* discarded on arrival (chaos runs).
    corrupted_discards: int = 0
    #: Why the sender gave up, when it did (``None`` for flows that are
    #: still running or completed).  The liveness contract (see
    #: :mod:`repro.chaos.sweep`) requires every failed flow to carry one
    #: of these structured reasons, e.g. ``"max-flow-duration"`` or
    #: ``"syn-retries-exhausted"``.
    abort_reason: Optional[str] = None
    extra: dict = field(default_factory=dict)

    # ------------------------------------------------------------------

    @property
    def completed(self) -> bool:
        """True when the receiver has every byte."""
        return self.complete_time is not None

    @property
    def failed(self) -> bool:
        """True once the sender aborted the flow (see :attr:`abort_reason`)."""
        return self.abort_reason is not None

    @property
    def fct(self) -> Optional[float]:
        """Flow completion time including connection setup (paper §4.2.1):
        receiver-complete minus the flow's scheduled start."""
        if self.complete_time is None:
            return None
        return self.complete_time - self.spec.start_time

    @property
    def total_retransmissions(self) -> int:
        """Normal plus proactive retransmissions."""
        return self.normal_retransmissions + self.proactive_retransmissions

    def rtts_used(self) -> Optional[float]:
        """FCT normalized by the handshake RTT (Fig. 7)."""
        if self.fct is None or not self.handshake_rtt:
            return None
        return self.fct / self.handshake_rtt

    def bandwidth_overhead(self) -> float:
        """Extra first-plus-retransmitted bytes relative to the flow size,
        as a fraction (0.5 means 50% extra packets were sent)."""
        total = (self.data_packets_sent + self.normal_retransmissions
                 + self.proactive_retransmissions)
        return total / self.spec.n_segments - 1.0
