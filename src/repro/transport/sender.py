"""The sender framework.

:class:`SenderBase` implements everything the eight schemes share —
handshake with SYN retry, segment (re)transmission, SACK scoreboard
driving, RTT estimation, RTO with exponential backoff, SACK-based loss
detection, fast-retransmit-style recovery, and slow start / congestion
avoidance — and exposes hook points the protocol subclasses override:

``on_established``
    Called once the handshake completes; the default starts window-driven
    transmission (slow start).  JumpStart/Halfback/PCP replace this with
    their pacing/probing start-up.
``on_ack_hook(packet, newly_acked)``
    Called for every arriving ACK after scoreboard/cwnd bookkeeping;
    Halfback's ROPR lives here.
``on_timeout_hook`` / ``on_loss_detected``
    Notifications around RTO and SACK-inferred loss.
``allow_new_data(seq)`` / ``congestion_window_gate()``
    Policy predicates for transmitting new data; JumpStart's bursty
    recovery disables the congestion gate.
``wants_duplicate(seq)``
    Proactive TCP duplicates every transmission via this hook.

Flow completion at the *sender* is "everything ACKed"; the experiment
harness measures FCT at the receiver (paper's definition includes the
handshake, which both views share).
"""

from __future__ import annotations

from enum import Enum
from typing import List, Optional

from repro import fastpath
from repro.errors import TransportError
from repro.net.packet import Packet, PacketType
from repro.telemetry.schema import (
    EV_SENDER_DONE, EV_SENDER_ESTABLISHED, EV_SENDER_FAILED,
    EV_SENDER_RECOVERY, EV_SENDER_RTO,
)
from repro.transport.config import TransportConfig
from repro.transport.flow import FlowRecord, FlowSpec
from repro.transport.rtt import RttEstimator
from repro.transport.sacks import SendScoreboard

__all__ = ["SenderBase", "SenderState"]

#: Stand-in for an unbounded slow-start threshold.
INFINITE_SSTHRESH = float("inf")


class SenderState(Enum):
    """Sender connection states."""

    IDLE = "idle"
    SYN_SENT = "syn_sent"
    ESTABLISHED = "established"
    DONE = "done"
    FAILED = "failed"


class SenderBase:
    """Base class for all transmission schemes.

    Subclasses set :attr:`protocol_name` and override the hook methods;
    they should not touch the scoreboard directly except through the
    provided helpers.
    """

    protocol_name = "base"

    #: When False, loss inference uses the naive dupack rule that
    #: re-declares fresh retransmissions lost on stale SACK evidence —
    #: the "retransmit the same packets multiple times" behaviour the
    #: paper attributes to JumpStart.  Modern-stack senders keep the
    #: RFC 6675 retransmission-tracking rule (True).
    tracks_retransmissions = True

    def __init__(
        self,
        sim,
        host,
        flow: FlowSpec,
        record: Optional[FlowRecord] = None,
        config: Optional[TransportConfig] = None,
    ) -> None:
        self.sim = sim
        self.host = host
        self.flow = flow
        self.config = config if config is not None else TransportConfig()
        self.record = record if record is not None else FlowRecord(flow)
        self.scoreboard = SendScoreboard(flow.n_segments)
        self.rtt = RttEstimator(
            initial_rto=self.config.initial_rto,
            min_rto=self.config.min_rto,
            max_rto=self.config.max_rto,
        )
        self.state = SenderState.IDLE
        self.cwnd: float = float(self.initial_cwnd())
        self.ssthresh: float = INFINITE_SSTHRESH
        self.recovery_point: int = -1  # highest_sent when recovery began
        self._syn_tries = 0
        self.rto_timer = sim.timer(self._on_rto, name=f"rto:{flow.flow_id}")
        self._deadline_handle = None
        # Aggregate (all-senders) telemetry; no-ops when telemetry is off.
        metrics = sim.metrics
        self._m_segments_sent = metrics.counter("sender.segments_sent")
        self._m_retx_normal = metrics.counter("sender.retx_normal")
        self._m_retx_proactive = metrics.counter("sender.retx_proactive")
        self._m_rto_fired = metrics.counter("sender.rto_fired")
        self._m_recovery = metrics.counter("sender.recovery_entered")
        self._m_completed = metrics.counter("sender.flows_completed")
        self._m_failed = metrics.counter("sender.flows_failed")
        if fastpath.enabled():
            cls = type(self)
            if (cls.on_ack_hook is SenderBase.on_ack_hook
                    and cls._handle_ack is SenderBase._handle_ack):
                # Zero-overhead build: this protocol leaves the per-ACK
                # hook as the base no-op, so bind the variant that
                # skips its dispatch on the clean-connection hot path.
                self._handle_ack = self._handle_ack_nohook
        host.register(flow.flow_id, self)

    # ==================================================================
    # Hook points (protocol policy)
    # ==================================================================

    def initial_cwnd(self) -> int:
        """Initial congestion window in segments."""
        return self.config.initial_cwnd

    def on_established(self) -> None:
        """Start-up behaviour after the handshake; default: slow start."""
        self.send_window()

    def on_ack_hook(self, packet: Packet, newly_acked: List[int]) -> None:
        """Per-ACK protocol hook (after bookkeeping, before completion)."""

    def on_loss_detected(self, lost: List[int]) -> None:
        """Called when SACK inference marks segments lost."""

    def on_timeout_hook(self) -> None:
        """Called after RTO bookkeeping, before retransmission."""

    def allow_new_data(self, seq: int) -> bool:
        """Policy gate for transmitting new segment ``seq``."""
        return True

    def congestion_window_gate(self) -> bool:
        """True when the congestion window permits another transmission."""
        return self.scoreboard.pipe < self.cwnd

    def wants_duplicate(self, seq: int) -> bool:
        """Whether to send an immediate proactive duplicate of ``seq``."""
        return False

    def on_complete_hook(self) -> None:
        """Called once when every segment has been acknowledged."""

    # ==================================================================
    # Connection lifecycle
    # ==================================================================

    def start(self) -> None:
        """Initiate the handshake (the flow's official start instant).

        With ``config.fast_open`` the sender transmits the SYN and then
        starts data immediately (0-RTT), seeding the RTT estimator from
        ``config.rtt_hint`` when given — the TCP-Fast-Open/ASAP drop-in
        §6 describes.
        """
        if self.state != SenderState.IDLE:
            raise TransportError("sender already started")
        self.record.syn_time = self.sim.now
        self._deadline_handle = self.sim.schedule(
            self.config.max_flow_duration, self._give_up, "max-flow-duration"
        )
        self._send_syn()
        if self.config.fast_open:
            if self.config.rtt_hint is not None:
                self.rtt.sample(self.config.rtt_hint)
                self.record.handshake_rtt = self.config.rtt_hint
            self.state = SenderState.ESTABLISHED
            self.record.established_time = self.sim.now
            self.on_established()

    def _send_syn(self) -> None:
        self.state = SenderState.SYN_SENT
        self._syn_tries += 1
        if self._syn_tries > 1:
            self.record.syn_retransmissions += 1
        packet = Packet(
            src=self.host.name,
            dst=self.flow.dst,
            flow_id=self.flow.flow_id,
            kind=PacketType.SYN,
            size=self.config.header_size,
            echo_time=self.sim.now,
            flow_bytes=self.flow.size,
        )
        self.host.send(packet)
        self.rto_timer.restart(self.rtt.rto)

    def on_packet(self, packet: Packet) -> None:
        """Host delivery entry point."""
        if self.state in (SenderState.DONE, SenderState.FAILED):
            return
        if packet.corrupted:
            # Checksum failure: discard silently; the RTO machinery
            # recovers (retransmitted ACK information or SYN retry).
            self.record.corrupted_discards += 1
            return
        if packet.kind == PacketType.SYN_ACK:
            self._handle_syn_ack(packet)
        elif packet.kind == PacketType.ACK:
            self._handle_ack(packet)

    def _handle_syn_ack(self, packet: Packet) -> None:
        if self.config.fast_open and self.state == SenderState.ESTABLISHED:
            # 0-RTT start: the connection is already live; the SYN-ACK
            # still contributes an RTT measurement.
            if packet.echo_time >= 0:
                sample = self.sim.now - packet.echo_time
                self.rtt.sample(sample)
                if self.record.handshake_rtt is None:
                    self.record.handshake_rtt = sample
            return
        if self.state != SenderState.SYN_SENT:
            return  # duplicate SYN-ACK after establishment
        if packet.echo_time >= 0:
            sample = self.sim.now - packet.echo_time
            self.rtt.sample(sample)
            self.record.handshake_rtt = sample
        self.state = SenderState.ESTABLISHED
        self.record.established_time = self.sim.now
        self.rto_timer.cancel()
        ack = Packet(
            src=self.host.name,
            dst=self.flow.dst,
            flow_id=self.flow.flow_id,
            kind=PacketType.HANDSHAKE_ACK,
            size=self.config.header_size,
        )
        self.host.send(ack)
        self.sim.trace.record(
            self.sim.now, EV_SENDER_ESTABLISHED, self.protocol_name,
            flow=self.flow.flow_id, rtt=self.record.handshake_rtt,
        )
        self.on_established()

    # ==================================================================
    # ACK processing
    # ==================================================================

    def _handle_ack(self, packet: Packet) -> None:
        if self.state != SenderState.ESTABLISHED:
            return
        if packet.echo_time >= 0:
            self.rtt.sample(self.sim.now - packet.echo_time)
        scoreboard = self.scoreboard
        newly = scoreboard.on_ack(packet.ack, packet.sack, now=self.sim.now)
        # Fast path: a pure cumulative ACK on a clean connection — no
        # SACK blocks on the wire, no recovery episode in progress, and
        # no selectively-ACKed holes above the frontier (the common case
        # for paced short flows).  With the SACK frontier below cum_ack
        # both loss-inference rules are provably vacuous (any evidence
        # mark is >= its segment >= cum_ack > highest_sacked - DUPTHRESH,
        # and the naive rule's scan range is empty), so the recovery/loss
        # machinery can be skipped outright.
        if (not packet.sack and self.recovery_point < 0
                and scoreboard.highest_sacked < scoreboard.cum_ack):
            if newly:
                self._grow_cwnd(len(newly))
                if scoreboard.all_acked:
                    self.rto_timer.cancel()
                else:
                    self.rto_timer.restart(self.rtt.rto)
            self.on_ack_hook(packet, newly)
            if scoreboard.all_acked:
                self._complete()
                return
            self.send_window()
            return
        lost_now = self.scoreboard.detect_lost(
            track_retransmissions=self.tracks_retransmissions,
            now=self.sim.now,
            rtx_round=None if self.tracks_retransmissions else self.smoothed_rtt(),
        )
        if lost_now:
            self._enter_recovery_if_needed()
            self.on_loss_detected(lost_now)
        if (self.recovery_point >= 0
                and self.scoreboard.cum_ack > self.recovery_point):
            self.recovery_point = -1
        if newly:
            self._grow_cwnd(len(newly))
            if self.scoreboard.all_acked:
                self.rto_timer.cancel()
            else:
                self.rto_timer.restart(self.rtt.rto)
        self.on_ack_hook(packet, newly)
        if self.scoreboard.all_acked:
            self._complete()
            return
        self.send_window()

    def _handle_ack_nohook(self, packet: Packet) -> None:
        """:meth:`_handle_ack` for the zero-overhead build (fastpath):
        the clean-connection hot path without the ``on_ack_hook``
        dispatch, bound only for protocols that leave the hook as the
        base no-op.  Anything off the hot path (SACK blocks, an active
        recovery episode, holes above the frontier) falls through to the
        full handler, whose loss machinery it needs anyway."""
        if self.state != SenderState.ESTABLISHED:
            return
        scoreboard = self.scoreboard
        if (packet.sack or self.recovery_point >= 0
                or scoreboard.highest_sacked >= scoreboard.cum_ack):
            SenderBase._handle_ack(self, packet)
            return
        if packet.echo_time >= 0:
            self.rtt.sample(self.sim.now - packet.echo_time)
        newly = scoreboard.on_ack(packet.ack, (), now=self.sim.now)
        if newly:
            self._grow_cwnd(len(newly))
            if scoreboard.all_acked:
                self.rto_timer.cancel()
                self._complete()
                return
            self.rto_timer.restart(self.rtt.rto)
        self.send_window()

    def _enter_recovery_if_needed(self) -> None:
        if self.recovery_point >= 0:
            return  # already reacting to this loss episode
        self.recovery_point = self.scoreboard.highest_sent
        flight = max(self.scoreboard.pipe, 1)
        self.ssthresh = max(flight / 2.0, 2.0)
        self.cwnd = max(self.ssthresh, 1.0)
        self._m_recovery.inc()
        self.sim.trace.record(
            self.sim.now, EV_SENDER_RECOVERY, self.protocol_name,
            flow=self.flow.flow_id, point=self.recovery_point,
        )

    def _grow_cwnd(self, newly_acked: int) -> None:
        if self.recovery_point >= 0:
            return  # no growth during recovery
        if self.cwnd < self.ssthresh:
            self.cwnd += newly_acked  # slow start
        else:
            self.cwnd += newly_acked / self.cwnd  # congestion avoidance

    # ==================================================================
    # Transmission
    # ==================================================================

    def send_window(self) -> None:
        """Transmit as much as current policy allows: retransmissions of
        LOST segments first, then new data."""
        if self.state != SenderState.ESTABLISHED:
            return
        while True:
            if not self.congestion_window_gate():
                break
            lost = self.scoreboard.first_lost()
            if lost is not None:
                self.send_segment(lost, retransmit=True)
                continue
            nxt = self.scoreboard.next_unsent()
            if (nxt is not None
                    and self._within_flow_control(nxt)
                    and self.allow_new_data(nxt)):
                self.send_segment(nxt)
                continue
            break

    def _within_flow_control(self, seq: int) -> bool:
        return seq < self.scoreboard.cum_ack + self.config.window_segments

    def send_segment(self, seq: int, retransmit: bool = False,
                     proactive: bool = False) -> None:
        """Transmit one segment and update scoreboard/counters/timers."""
        if self.state != SenderState.ESTABLISHED:
            return
        if self.scoreboard.is_acked(seq):
            return  # nothing to gain; keep the wire clean
        size = self.config.segment_wire_size(
            seq, self.flow.n_segments, self.flow.size
        )
        packet = Packet(
            src=self.host.name,
            dst=self.flow.dst,
            flow_id=self.flow.flow_id,
            kind=PacketType.DATA,
            size=size,
            seq=seq,
            echo_time=-1.0 if retransmit else self.sim.now,
            retransmit=retransmit,
            proactive=proactive,
            # Fast-open data may race (or outlive) the SYN, so it
            # carries the content length itself.
            flow_bytes=self.flow.size if self.config.fast_open else -1,
        )
        self.scoreboard.mark_sent(seq, time=self.sim.now)
        if retransmit and proactive:
            self.record.proactive_retransmissions += 1
            self._m_retx_proactive.inc()
        elif retransmit:
            self.record.normal_retransmissions += 1
            self._m_retx_normal.inc()
        else:
            self.record.data_packets_sent += 1
            self._m_segments_sent.inc()
        self.host.send(packet)
        if not self.rto_timer.armed:
            self.rto_timer.start(self.rtt.rto)
        if not proactive and self.wants_duplicate(seq):
            self._send_duplicate(seq, size)

    def _send_duplicate(self, seq: int, size: int) -> None:
        self._m_retx_proactive.inc()
        duplicate = Packet(
            src=self.host.name,
            dst=self.flow.dst,
            flow_id=self.flow.flow_id,
            kind=PacketType.DATA,
            size=size,
            seq=seq,
            echo_time=-1.0,
            retransmit=True,
            proactive=True,
        )
        self.record.proactive_retransmissions += 1
        self.host.send(duplicate)

    # ==================================================================
    # Timeout handling
    # ==================================================================

    def _on_rto(self) -> None:
        if self.state == SenderState.SYN_SENT:
            if self._syn_tries > self.config.max_syn_retries:
                self._give_up("syn-retries-exhausted")
                return
            self.rtt.on_timeout()
            self._send_syn()
            return
        if self.state != SenderState.ESTABLISHED:
            return
        self.record.timeouts += 1
        self._m_rto_fired.inc()
        self.rtt.on_timeout()
        self.scoreboard.mark_all_in_flight_lost()
        flight = max(self.scoreboard.pipe + len(self.scoreboard.lost_segments()), 1)
        self.ssthresh = max(flight / 2.0, 2.0)
        self.cwnd = 1.0
        self.recovery_point = -1
        self.sim.trace.record(
            self.sim.now, EV_SENDER_RTO, self.protocol_name,
            flow=self.flow.flow_id, timeouts=self.record.timeouts,
        )
        self.on_timeout_hook()
        self.send_window()
        if not self.rto_timer.armed and not self.scoreboard.all_acked:
            self.rto_timer.start(self.rtt.rto)

    # ==================================================================
    # Termination
    # ==================================================================

    def _complete(self) -> None:
        self.state = SenderState.DONE
        self.record.sender_done_time = self.sim.now
        self.record.final_srtt = self.rtt.srtt
        self._m_completed.inc()
        self.sim.trace.record(
            self.sim.now, EV_SENDER_DONE, self.protocol_name,
            flow=self.flow.flow_id,
            fct=self.sim.now - self.flow.start_time,
            retx=self.record.normal_retransmissions,
            proactive=self.record.proactive_retransmissions,
        )
        self.on_complete_hook()
        self._teardown()

    def _give_up(self, reason: str = "max-flow-duration") -> None:
        """Abort the flow, recording a structured ``reason``.

        The chaos sweep's liveness contract (see
        :mod:`repro.chaos.sweep`) requires every non-completing flow to
        end here with a diagnosable reason rather than hang, so callers
        must always pass one of the documented reason strings:
        ``"max-flow-duration"`` (the per-flow deadline expired) or
        ``"syn-retries-exhausted"`` (the handshake never completed).
        """
        if self.state in (SenderState.DONE, SenderState.FAILED):
            return
        self.state = SenderState.FAILED
        self.record.abort_reason = reason
        self._m_failed.inc()
        self.sim.trace.record(
            self.sim.now, EV_SENDER_FAILED, self.protocol_name,
            flow=self.flow.flow_id, reason=reason,
        )
        self._teardown()

    def _teardown(self) -> None:
        self.rto_timer.cancel()
        if self._deadline_handle is not None:
            self._deadline_handle.cancel()
            self._deadline_handle = None
        self.host.unregister(self.flow.flow_id)

    # ==================================================================
    # Introspection helpers
    # ==================================================================

    @property
    def established(self) -> bool:
        """True while the connection is open for data."""
        return self.state == SenderState.ESTABLISHED

    @property
    def in_recovery(self) -> bool:
        """True during a SACK-triggered recovery episode."""
        return self.recovery_point >= 0

    def smoothed_rtt(self) -> float:
        """Best available RTT estimate (handshake sample as fallback)."""
        if self.rtt.srtt is not None:
            return self.rtt.srtt
        if self.record.handshake_rtt is not None:
            return self.record.handshake_rtt
        return self.config.initial_rto
