"""Transport framework (substrate 3): the reliable-transport machinery
all eight schemes are built on."""

from repro.transport.config import TransportConfig
from repro.transport.flow import FlowRecord, FlowSpec, next_flow_id, segments_for
from repro.transport.pacing import Pacer, pacing_rate_for
from repro.transport.receiver import Receiver, ReceiverState
from repro.transport.rtt import RttEstimator
from repro.transport.sacks import (
    IntervalSet,
    ReceiveTracker,
    SegmentState,
    SendScoreboard,
)
from repro.transport.sender import SenderBase, SenderState

__all__ = [
    "FlowRecord",
    "FlowSpec",
    "IntervalSet",
    "Pacer",
    "ReceiveTracker",
    "Receiver",
    "ReceiverState",
    "RttEstimator",
    "SegmentState",
    "SendScoreboard",
    "SenderBase",
    "SenderState",
    "TransportConfig",
    "next_flow_id",
    "pacing_rate_for",
    "segments_for",
]
