"""Transport-level configuration shared by every protocol."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigurationError
from repro.units import (
    DEFAULT_INITIAL_WINDOW,
    FLOW_CONTROL_WINDOW,
    HEADER_SIZE,
    SEGMENT_SIZE,
)

__all__ = ["TransportConfig"]


@dataclass
class TransportConfig:
    """Knobs common to all senders (paper §4.1 defaults).

    Attributes
    ----------
    segment_size:
        Bytes on the wire per full data segment, header included (1500).
    header_size:
        Header bytes per packet; ACKs and handshake packets are this size.
    flow_control_window:
        Receiver-advertised window in bytes (141 KB).
    initial_cwnd:
        Initial congestion window in segments (2 for TCP-family).
    initial_rto, min_rto, max_rto:
        RTO parameters fed to :class:`~repro.transport.rtt.RttEstimator`.
        The 1 s floor follows RFC 6298; it is what makes a timeout the
        catastrophic event the paper describes (set 0.2 for a
        Linux-flavoured floor in sensitivity studies).
    max_syn_retries:
        Handshake attempts before the flow is abandoned.
    max_flow_duration:
        Safety net: a sender that has not finished within this many
        seconds gives up (records an incomplete flow).  Collapse-regime
        runs rely on this to terminate.
    """

    segment_size: int = SEGMENT_SIZE
    header_size: int = HEADER_SIZE
    flow_control_window: int = FLOW_CONTROL_WINDOW
    initial_cwnd: int = DEFAULT_INITIAL_WINDOW
    initial_rto: float = 1.0
    min_rto: float = 1.0
    max_rto: float = 60.0
    max_syn_retries: int = 6
    max_flow_duration: float = 300.0
    #: TCP-Fast-Open / ASAP-style 0-RTT start (§6: handshake
    #: optimizations are orthogonal drop-ins): data transmission starts
    #: immediately after the SYN, without waiting for the SYN-ACK.
    fast_open: bool = False
    #: RTT estimate from a previous connection, used to seed the
    #: estimator (and hence pacing) when ``fast_open`` skips the
    #: handshake measurement.
    rtt_hint: Optional[float] = None

    def __post_init__(self) -> None:
        if self.segment_size <= self.header_size:
            raise ConfigurationError("segment_size must exceed header_size")
        if self.flow_control_window < self.segment_size:
            raise ConfigurationError(
                "flow_control_window must hold at least one segment"
            )
        if self.initial_cwnd < 1:
            raise ConfigurationError("initial_cwnd must be >= 1 segment")
        if self.max_flow_duration <= 0:
            raise ConfigurationError("max_flow_duration must be positive")

    @property
    def mss(self) -> int:
        """Payload bytes per full segment."""
        return self.segment_size - self.header_size

    @property
    def window_segments(self) -> int:
        """Flow-control window expressed in whole segments."""
        return max(1, self.flow_control_window // self.segment_size)

    def segment_wire_size(self, seq: int, n_segments: int, flow_bytes: int) -> int:
        """Wire size of segment ``seq`` of a flow (the last may be short)."""
        if seq < n_segments - 1:
            return self.segment_size
        tail_payload = flow_bytes - (n_segments - 1) * self.mss
        return self.header_size + tail_payload
