"""The schedule-perturbation harness.

The static side of the happens-before story (the race check in
:mod:`repro.hb.detect`) claims that same-timestamp scheduler events
commute; this module is the dynamic validation.  A scenario is run once
with the canonical FIFO tie-break, then re-run under
:func:`repro.sim.scheduler.tiebreak_permutation` with each requested
salt — every simulator built during the re-run resolves
same-``(time, priority)`` ties in a salted, bijectively scrambled order
instead of FIFO.  Any permutation of a tie group is a valid causal
execution (an event cannot be in the heap before the event that
scheduled it has fired), so if the commutation claim holds, every
re-run must produce a **bit-identical report fingerprint**.  A mismatch
is a concrete, reproducible witness of execution-order sensitivity —
the exact failure the nondeterminism checker exists to catch.

Scenarios are the named experiments from
:data:`repro.experiments.cli.EXPERIMENTS`, run in-process at a quick
scale with ``jobs=1`` so the ambient salt reaches every simulator.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import List, Sequence

from repro.sim.scheduler import tiebreak_permutation

__all__ = ["PerturbedRun", "PerturbationResult", "run_scenario", "perturb",
           "DEFAULT_SALTS"]

#: Salts used when the caller does not choose; three distinct
#: permutations is the floor the acceptance bar asks for.
DEFAULT_SALTS = (1, 2, 3)

#: Quick-run scale passed to scaled experiments (fig6 at 0.05 runs 13
#: of the 260 PlanetLab paths; unscaled experiments ignore it).
DEFAULT_SCALE = 0.05


def fingerprint(report: str) -> str:
    """SHA-256 hex digest of a report's exact bytes."""
    return hashlib.sha256(report.encode("utf-8")).hexdigest()


def run_scenario(name: str, scale: float = DEFAULT_SCALE,
                 seed: int = 17) -> str:
    """Run experiment ``name`` in-process and return its report text."""
    from repro.experiments.cli import EXPERIMENTS
    if name not in EXPERIMENTS:
        known = ", ".join(sorted(EXPERIMENTS))
        raise KeyError(f"unknown scenario {name!r} (known: {known})")
    _, runner = EXPERIMENTS[name]
    result, formatter = runner(scale, seed)
    return formatter(result)


@dataclass
class PerturbedRun:
    """One permuted re-run of a scenario."""

    salt: int
    fingerprint: str
    identical: bool


@dataclass
class PerturbationResult:
    """Baseline fingerprint plus every permuted re-run's verdict."""

    scenario: str
    scale: float
    seed: int
    baseline: str
    runs: List[PerturbedRun] = field(default_factory=list)

    @property
    def identical(self) -> bool:
        """True when every permuted run matched the baseline."""
        return all(run.identical for run in self.runs)

    def report(self) -> str:
        """Human-readable harness summary."""
        lines = [
            f"scenario {self.scenario} (scale={self.scale}, "
            f"seed={self.seed})",
            f"baseline fingerprint: {self.baseline}",
        ]
        for run in self.runs:
            verdict = "identical" if run.identical else "DIVERGED"
            lines.append(f"salt {run.salt}: {run.fingerprint} [{verdict}]")
        lines.append("schedule perturbation: "
                     + ("PASS — tie-break order does not affect results"
                        if self.identical else
                        "FAIL — results depend on tie-break order"))
        return "\n".join(lines)


def perturb(scenario: str, salts: Sequence[int] = DEFAULT_SALTS,
            scale: float = DEFAULT_SCALE, seed: int = 17,
            ) -> PerturbationResult:
    """Run ``scenario`` canonically, then once per salt with permuted
    tie-breaks, comparing report fingerprints bit-for-bit."""
    baseline = fingerprint(run_scenario(scenario, scale=scale, seed=seed))
    result = PerturbationResult(scenario=scenario, scale=scale, seed=seed,
                                baseline=baseline)
    for salt in salts:
        with tiebreak_permutation(salt):
            fp = fingerprint(run_scenario(scenario, scale=scale, seed=seed))
        result.runs.append(PerturbedRun(salt=salt, fingerprint=fp,
                                        identical=fp == baseline))
    return result
