"""The scheduler-nondeterminism audit checker.

A streaming :class:`~repro.audit.invariants.Checker` over the v5
``sched.exec`` provenance events: within every group of same-timestamp
executed events, any pair that runs against the *same entity* (the
shared-mutable-state proxy) must be connected by a causal
happens-before path — a scheduling-parent chain, a timer set→fire, or
a packet tx→deliver / data→ACK edge.  A pair that is not is a genuine
execution-order sensitivity: the scheduler's FIFO tie-break, not the
model, decided which ran first, and a permuted tie-break
(:mod:`repro.hb.perturb`) could change the run's observable results —
exactly the failure mode that would silently break the repo's
fingerprint guarantees.

The entity is an object-granularity proxy, so an owner whose callbacks
run against provably disjoint halves can over-report; such owners
refine the proxy by declaring ``HB_PARTITIONS`` (see
:meth:`repro.sim.simulator.Simulator._event_entity` and
:class:`repro.net.link.Link`, whose delivery pipe is independent of
its serializer).

Causal edges never go backward in simulated time, so a happens-before
path between two same-timestamp events can only traverse events at
that timestamp; the checker therefore buffers one tie group at a time
and decides reachability entirely within it, keeping memory bounded by
the largest same-instant burst.  Program-order is deliberately *not* a
causal edge here: among same-timestamp events it is the tie-break
artifact under audit.

The checker is inert on traces without provenance events (the default),
so it rides in :func:`repro.audit.invariants.default_checkers` at zero
cost to existing audited runs.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.audit.invariants import Checker, Violation
from repro.telemetry.schema import (
    EV_PKT_ACK_GEN,
    EV_PKT_DELIVER,
    EV_PKT_TX,
    EV_SCHED_EXEC,
)

__all__ = ["SchedulerNondeterminismChecker"]

#: Tie groups larger than this are not analyzed (quadratic-ish pair
#: work on a same-instant burst this size would stall the audit); the
#: skip is surfaced as a violation so it cannot pass silently.
MAX_GROUP = 10_000

_TIMER_FIRE = "Timer._fire"


class SchedulerNondeterminismChecker(Checker):
    """Flag same-timestamp, same-entity event pairs with no HB path."""

    name = "scheduler-nondeterminism"

    def __init__(self) -> None:
        self._time: Optional[float] = None
        # Current tie group, in execution order: (seq, entity, callback).
        self._group: List[Tuple[int, str, str]] = []
        self._in_group: Dict[int, int] = {}  # seq -> group index
        self._forward: Dict[int, List[int]] = {}  # causal edges in group
        self._current: Optional[int] = None  # seq of executing event
        self._tx_node: Dict[int, int] = {}  # pkt uid -> tx seq (in group)
        self._deliver_node: Dict[int, int] = {}  # pkt uid -> deliver seq

    # ------------------------------------------------------------------
    # Stream intake
    # ------------------------------------------------------------------

    def observe(self, record) -> List[Violation]:
        kind = record.kind
        out: List[Violation] = []
        if kind == EV_SCHED_EXEC:
            if self._time is not None and record.time != self._time:
                out = self._flush()
            detail = record.detail
            seq = detail["seq"]
            self._time = record.time
            self._current = seq
            self._in_group[seq] = len(self._group)
            self._group.append((seq, record.source, detail["callback"]))
            parent = detail.get("parent")
            if parent is not None and parent in self._in_group:
                self._forward.setdefault(parent, []).append(seq)
        elif self._current is not None:
            detail = record.detail
            if kind == EV_PKT_TX:
                self._tx_node[detail["uid"]] = self._current
            elif kind == EV_PKT_DELIVER:
                src = self._tx_node.pop(detail["uid"], None)
                if src is not None and src in self._in_group:
                    self._forward.setdefault(src, []).append(self._current)
                self._deliver_node[detail["uid"]] = self._current
            elif kind == EV_PKT_ACK_GEN:
                src = self._deliver_node.get(detail.get("parent"))
                if src is not None and src in self._in_group:
                    self._forward.setdefault(src, []).append(self._current)
        return out

    def finalize(self) -> List[Violation]:
        return self._flush()

    # ------------------------------------------------------------------
    # Group analysis
    # ------------------------------------------------------------------

    def _flush(self) -> List[Violation]:
        """Analyze the buffered tie group and reset for the next one."""
        group, time = self._group, self._time
        forward = self._forward
        self._group = []
        self._in_group = {}
        self._forward = {}
        self._current = None
        # Packet endpoints from a finished instant cannot pair with a
        # later (different-time) event inside one group, so drop them.
        self._tx_node.clear()
        self._deliver_node.clear()
        if len(group) < 2 or time is None:
            return []
        if len(group) > MAX_GROUP:
            return [Violation(
                checker=self.name, time=time,
                message=(f"tie group of {len(group)} same-timestamp events "
                         f"exceeds the {MAX_GROUP}-event analysis bound; "
                         "nondeterminism not checked at this instant"),
            )]
        buckets: Dict[str, List[Tuple[int, str]]] = {}
        for seq, entity, callback in group:
            buckets.setdefault(entity, []).append((seq, callback))
        out: List[Violation] = []
        for entity, events in buckets.items():
            for (seq_a, cb_a), (seq_b, cb_b) in zip(events, events[1:]):
                if not _reaches(forward, seq_a, seq_b):
                    out.append(Violation(
                        checker=self.name, time=time,
                        message=(f"entity {entity!r}: {cb_a} (seq {seq_a}) "
                                 f"and {cb_b} (seq {seq_b}) fire at one "
                                 "instant with no happens-before path; "
                                 "tie-break order can change results"),
                        seq=seq_a,
                    ))
        return out


def _reaches(forward: Dict[int, List[int]], src: int, dst: int) -> bool:
    """True when ``dst`` is reachable from ``src`` over ``forward``."""
    if src == dst:
        return True
    stack = [src]
    visited = {src}
    while stack:
        for nxt in forward.get(stack.pop(), ()):
            if nxt == dst:
                return True
            if nxt not in visited:
                visited.add(nxt)
                stack.append(nxt)
    return False
