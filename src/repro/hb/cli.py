"""``python -m repro hb`` — the happens-before observatory CLI.

Four subcommands over one graph source (``--run NAME`` for an
in-process quick run of a named experiment under a
:class:`~repro.hb.session.ProvenanceSession`, or ``--trace FILE`` for a
recorded JSONL trace that was captured with provenance on):

* ``stats``   — node/edge/entity counts and tie-group exposure;
* ``races``   — enumerate same-timestamp same-entity pairs with no
  happens-before path (exit 1 when any exist);
* ``export``  — write the graph as Graphviz DOT and/or a Perfetto
  ``trace_event`` JSON;
* ``perturb`` — the schedule-perturbation harness: re-run a scenario
  with salted tie-break permutations and diff report fingerprints
  (exit 1 on any divergence).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

__all__ = ["hb_main"]


def _graph_from_args(args) -> "object":
    from repro.hb.graph import build_graph
    if args.trace is not None:
        from repro.audit.replay import iter_trace
        return build_graph(iter_trace(args.trace))
    from repro.hb.perturb import DEFAULT_SCALE, run_scenario
    from repro.hb.session import ProvenanceSession
    with ProvenanceSession() as session:
        run_scenario(args.run, scale=getattr(args, "scale", DEFAULT_SCALE),
                     seed=args.seed)
        return build_graph(session.records())


def _add_source_args(parser: argparse.ArgumentParser) -> None:
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument(
        "--run", metavar="NAME",
        help="Run this experiment in-process (quick scale) with "
             "provenance recording on.")
    source.add_argument(
        "--trace", metavar="FILE",
        help="Build the graph from a recorded JSONL trace (must have "
             "been captured with provenance enabled).")
    parser.add_argument("--scale", type=float, default=None,
                        help="Scale factor for --run (default quick).")
    parser.add_argument("--seed", type=int, default=17,
                        help="Seed for --run (default 17).")


def hb_main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro hb",
        description="Happens-before analysis over scheduler provenance.")
    sub = parser.add_subparsers(dest="command", required=True)

    stats = sub.add_parser("stats", help="Graph summary counts.")
    _add_source_args(stats)

    races = sub.add_parser(
        "races", help="Same-timestamp same-entity pairs with no HB path.")
    _add_source_args(races)

    export = sub.add_parser(
        "export", help="Write the graph as DOT and/or Perfetto JSON.")
    _add_source_args(export)
    export.add_argument("--dot", metavar="PATH",
                        help="Write Graphviz DOT here.")
    export.add_argument("--perfetto", metavar="PATH",
                        help="Write Perfetto trace_event JSON here.")
    export.add_argument("--max-nodes", type=int, default=None,
                        help="Cap exported nodes (default: 2000 for DOT, "
                             "500000 for Perfetto).")

    perturb = sub.add_parser(
        "perturb",
        help="Re-run a scenario with permuted tie-breaks and diff "
             "report fingerprints.")
    perturb.add_argument("scenario",
                         help="Experiment name (e.g. fig3, fig6).")
    perturb.add_argument("--salts", default="1,2,3",
                         help="Comma-separated permutation salts "
                              "(default 1,2,3).")
    perturb.add_argument("--scale", type=float, default=None,
                         help="Scale factor (default quick).")
    perturb.add_argument("--seed", type=int, default=17,
                         help="Scenario seed (default 17).")

    args = parser.parse_args(argv)

    from repro.hb.perturb import DEFAULT_SCALE
    if getattr(args, "scale", None) is None:
        args.scale = DEFAULT_SCALE

    if args.command == "perturb":
        from repro.hb.perturb import perturb as run_perturb
        try:
            salts = [int(s) for s in args.salts.split(",") if s.strip()]
        except ValueError:
            print(f"error: bad --salts {args.salts!r}", file=sys.stderr)
            return 2
        try:
            result = run_perturb(args.scenario, salts=salts,
                                 scale=args.scale, seed=args.seed)
        except KeyError as exc:
            print(f"error: {exc.args[0]}", file=sys.stderr)
            return 2
        print(result.report())
        return 0 if result.identical else 1

    try:
        graph = _graph_from_args(args)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    except OSError as exc:
        print(f"error: cannot read trace: {exc}", file=sys.stderr)
        return 2
    if len(graph) == 0:
        print("error: no sched.exec events — was the trace recorded "
              "with provenance on?", file=sys.stderr)
        return 2

    if args.command == "stats":
        stats = graph.stats()
        print(f"nodes:         {stats['nodes']}")
        print(f"entities:      {stats['entities']}")
        print(f"roots:         {stats['roots']}")
        for kind, count in stats["edges"].items():
            print(f"edges[{kind}]:  {count}")
        print(f"tie groups:    {stats['tie_groups']} "
              f"(max size {stats['max_tie_group']})")
        return 0

    if args.command == "races":
        found = graph.races()
        stats = graph.stats()
        print(f"checked {stats['tie_groups']} tie group(s) across "
              f"{stats['nodes']} events on {stats['entities']} entities")
        if not found:
            print("no races: every same-timestamp same-entity pair is "
                  "happens-before ordered")
            return 0
        print(f"{len(found)} race(s):")
        for race in found:
            print(f"  t={race['time']:.9f} entity={race['entity']}: "
                  f"{race['first']} vs {race['second']}")
        return 1

    # export
    if not args.dot and not args.perfetto:
        print("error: export needs --dot and/or --perfetto",
              file=sys.stderr)
        return 2
    if args.dot:
        graph.write_dot(args.dot,
                        max_nodes=args.max_nodes or 2000)
        print(f"wrote DOT: {args.dot}")
    if args.perfetto:
        graph.write_perfetto(args.perfetto,
                             max_nodes=args.max_nodes or 500_000)
        print(f"wrote Perfetto: {args.perfetto}")
    return 0
