"""The happens-before graph over one run's provenance trace.

:class:`HBGraph` consumes a stream of trace records — the v5
``sched.exec`` scheduler-provenance events plus the v2 ``pkt.*``
lineage events — and builds the causal DAG of the run:

* **sched** edges: scheduling parent → child (the callback that ran
  ``sim.schedule(...)`` happens-before the scheduled event);
* **timer** edges: the same parent edge when the child is a
  :class:`~repro.sim.simulator.Timer` expiry (set → fire);
* **msg** edges: the event that serialized a packet onto a link
  (``pkt.tx``) → the event that delivered it (``pkt.deliver``);
* **ack** edges: the event that delivered a data packet → the event in
  which the receiver generated the responding ACK (``pkt.ack_gen``'s
  ``parent`` uid);
* **po** edges: program order — consecutive events executed against the
  same entity.  Program order is *recorded* but deliberately excluded
  from race reachability: between same-timestamp events it is exactly
  the tie-break artifact whose significance the analysis questions.

Packet-level records carry no event seq of their own; they are
attributed to the ``sched.exec`` node whose callback emitted them —
the simulator emits the exec record immediately before firing the
callback, so in stream order every record between two exec records
belongs to the first.

The race check (:meth:`HBGraph.races`) asks: within each group of
same-timestamp events, is every pair that touches the same entity
connected by a causal (non-po) happens-before path?  A pair that is
not is an *execution-order sensitivity*: the scheduler's FIFO
tie-break, not the model, decided their order, and a permuted
tie-break (:mod:`repro.hb.perturb`) could change the run's results.
Causal edges never go backward in simulated time, so a path between
two same-timestamp events can only traverse events at that same
timestamp — reachability is decided entirely within the group.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional, Set, Tuple

from repro.telemetry.schema import (
    EV_PKT_ACK_GEN,
    EV_PKT_DELIVER,
    EV_PKT_TX,
    EV_SCHED_EXEC,
)

__all__ = ["HBNode", "HBGraph", "build_graph"]

#: Edge kinds that establish causal order (race reachability).  ``po``
#: is excluded: among same-timestamp events it is the tie-break
#: artifact under audit, not evidence of an ordering constraint.
CAUSAL_EDGE_KINDS = frozenset({"sched", "timer", "msg", "ack"})

#: The timer-expiry callback qualname; parent edges into it are the
#: timer set → fire relation.
_TIMER_FIRE = "Timer._fire"


class HBNode:
    """One executed scheduler event (a ``sched.exec`` record)."""

    __slots__ = ("seq", "time", "entity", "callback", "parent", "prio")

    def __init__(self, seq: int, time: float, entity: str, callback: str,
                 parent: Optional[int], prio: int) -> None:
        self.seq = seq
        self.time = time
        self.entity = entity
        self.callback = callback
        self.parent = parent
        self.prio = prio

    def label(self) -> str:
        """Short human-readable identity for reports and exports."""
        return f"{self.entity}:{self.callback}@{self.seq}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<HBNode seq={self.seq} t={self.time:.6f} "
                f"{self.entity} {self.callback}>")


class HBGraph:
    """The happens-before DAG of one run (see module docstring).

    Build by streaming records through :meth:`observe` (or use
    :func:`build_graph`); nodes are kept in execution order.
    """

    def __init__(self) -> None:
        #: seq -> node, in execution (stream) order.
        self.nodes: Dict[int, HBNode] = {}
        #: (src seq, dst seq, kind) — deduplicated.
        self.edges: Set[Tuple[int, int, str]] = set()
        self._entity_last: Dict[str, int] = {}
        self._current: Optional[int] = None
        # Packet uid -> exec seq of its tx / final delivery (msg and ack
        # edge endpoints).
        self._tx_node: Dict[int, int] = {}
        self._deliver_node: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def observe(self, record) -> None:
        """Fold one trace record into the graph."""
        kind = record.kind
        detail = record.detail
        if kind == EV_SCHED_EXEC:
            node = HBNode(detail["seq"], record.time, record.source,
                          detail["callback"], detail.get("parent"),
                          detail.get("prio", 0))
            self.nodes[node.seq] = node
            self._current = node.seq
            parent = node.parent
            if parent is not None and parent in self.nodes:
                edge_kind = ("timer" if node.callback == _TIMER_FIRE
                             else "sched")
                self.edges.add((parent, node.seq, edge_kind))
            last = self._entity_last.get(node.entity)
            if last is not None:
                self.edges.add((last, node.seq, "po"))
            self._entity_last[node.entity] = node.seq
        elif self._current is not None:
            if kind == EV_PKT_TX:
                self._tx_node[detail["uid"]] = self._current
            elif kind == EV_PKT_DELIVER:
                src = self._tx_node.pop(detail["uid"], None)
                if src is not None and src != self._current:
                    self.edges.add((src, self._current, "msg"))
                self._deliver_node[detail["uid"]] = self._current
            elif kind == EV_PKT_ACK_GEN:
                src = self._deliver_node.get(detail.get("parent"))
                if src is not None and src != self._current:
                    self.edges.add((src, self._current, "ack"))

    def observe_all(self, records: Iterable[Any]) -> "HBGraph":
        """Fold a record iterable into the graph; returns self."""
        for record in records:
            self.observe(record)
        return self

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def entities(self) -> List[str]:
        """Distinct entities, in first-execution order."""
        seen: Dict[str, None] = {}
        for node in self.nodes.values():
            seen.setdefault(node.entity, None)
        return list(seen)

    def tie_groups(self) -> List[List[HBNode]]:
        """Same-timestamp groups of two or more consecutively-executed
        events, in execution order."""
        groups: List[List[HBNode]] = []
        run: List[HBNode] = []
        for node in self.nodes.values():
            if run and node.time == run[-1].time:
                run.append(node)
            else:
                if len(run) >= 2:
                    groups.append(run)
                run = [node]
        if len(run) >= 2:
            groups.append(run)
        return groups

    def stats(self) -> Dict[str, Any]:
        """Summary counts for reports and the CLI."""
        by_kind: Dict[str, int] = {}
        for _, _, kind in self.edges:
            by_kind[kind] = by_kind.get(kind, 0) + 1
        groups = self.tie_groups()
        roots = sum(1 for n in self.nodes.values() if n.parent is None)
        return {
            "nodes": len(self.nodes),
            "entities": len(self.entities()),
            "roots": roots,
            "edges": dict(sorted(by_kind.items())),
            "tie_groups": len(groups),
            "max_tie_group": max((len(g) for g in groups), default=0),
        }

    def races(self) -> List[Dict[str, Any]]:
        """Same-timestamp, same-entity event pairs with no causal path.

        For each tie group, entities executing two or more events are
        checked pairwise in execution order; a consecutive pair with no
        causal (non-po) happens-before path between them is reported.
        Consecutive pairs suffice: if every consecutive pair on an
        entity is causally ordered, the whole per-entity sequence is.
        """
        races: List[Dict[str, Any]] = []
        for group in self.tie_groups():
            in_group = {node.seq for node in group}
            forward: Dict[int, List[int]] = {}
            for src, dst, kind in self.edges:
                if (kind in CAUSAL_EDGE_KINDS and src in in_group
                        and dst in in_group):
                    forward.setdefault(src, []).append(dst)
            buckets: Dict[str, List[HBNode]] = {}
            for node in group:
                buckets.setdefault(node.entity, []).append(node)
            for entity, nodes in buckets.items():
                for first, second in zip(nodes, nodes[1:]):
                    if not _reaches(forward, first.seq, second.seq):
                        races.append({
                            "time": first.time,
                            "entity": entity,
                            "first": first.label(),
                            "second": second.label(),
                        })
        return races

    # ------------------------------------------------------------------
    # Exporters
    # ------------------------------------------------------------------

    def to_dot(self, max_nodes: int = 2000) -> str:
        """Graphviz DOT rendering (``dot -Tsvg hb.dot -o hb.svg``).

        Nodes beyond ``max_nodes`` (execution order) are elided so a
        long run still yields a renderable file; causal edge kinds are
        styled distinctly and program order is dashed grey.
        """
        styles = {
            "sched": 'color="black"',
            "timer": 'color="darkorange"',
            "msg": 'color="blue"',
            "ack": 'color="forestgreen"',
            "po": 'color="grey60", style="dashed"',
        }
        kept = dict(list(self.nodes.items())[:max_nodes])
        lines = ["digraph hb {", '  rankdir="LR";',
                 '  node [shape=box, fontsize=9];']
        for node in kept.values():
            label = (f"{node.entity}\\n{node.callback}\\n"
                     f"t={node.time:.6f} seq={node.seq}")
            lines.append(f'  n{node.seq} [label="{label}"];')
        for src, dst, kind in sorted(self.edges):
            if src in kept and dst in kept:
                style = styles.get(kind, "")
                lines.append(f'  n{src} -> n{dst} [{style}];')
        elided = len(self.nodes) - len(kept)
        if elided > 0:
            lines.append(f'  elided [shape=plaintext, '
                         f'label="... {elided} more events"];')
        lines.append("}")
        return "\n".join(lines)

    def to_perfetto(self, max_nodes: int = 500_000) -> Dict[str, Any]:
        """Chrome/Perfetto ``trace_event`` document.

        One track (tid) per entity; each executed event becomes a slice
        at its simulated time (microseconds), and every scheduling edge
        becomes a flow arrow so the causal structure is visible in the
        viewer.
        """
        events: List[Dict[str, Any]] = []
        tids: Dict[str, int] = {}
        kept = dict(list(self.nodes.items())[:max_nodes])
        for node in kept.values():
            tid = tids.setdefault(node.entity, len(tids) + 1)
            ts = node.time * 1e6
            events.append({
                "name": node.callback, "ph": "X", "cat": "sched",
                "ts": ts, "dur": 0.01, "pid": 1, "tid": tid,
                "args": {"seq": node.seq, "parent": node.parent,
                         "prio": node.prio},
            })
        for src, dst, kind in sorted(self.edges):
            if kind == "po" or src not in kept or dst not in kept:
                continue
            src_node, dst_node = self.nodes[src], self.nodes[dst]
            flow_id = (src << 20) ^ dst
            events.append({
                "name": kind, "ph": "s", "cat": "hb", "id": flow_id,
                "ts": src_node.time * 1e6, "pid": 1,
                "tid": tids[src_node.entity],
            })
            events.append({
                "name": kind, "ph": "f", "bp": "e", "cat": "hb",
                "id": flow_id, "ts": dst_node.time * 1e6, "pid": 1,
                "tid": tids[dst_node.entity],
            })
        for entity, tid in tids.items():
            events.append({
                "name": "thread_name", "ph": "M", "pid": 1, "tid": tid,
                "args": {"name": entity},
            })
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {
                "producer": "repro.hb",
                "truncated": len(self.nodes) > len(kept),
            },
        }

    def write_dot(self, path: str, max_nodes: int = 2000) -> None:
        """Write :meth:`to_dot` output to ``path``."""
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_dot(max_nodes=max_nodes))
            fh.write("\n")

    def write_perfetto(self, path: str, max_nodes: int = 500_000) -> None:
        """Write :meth:`to_perfetto` output as JSON to ``path``."""
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_perfetto(max_nodes=max_nodes), fh)
            fh.write("\n")

    def __len__(self) -> int:
        return len(self.nodes)


def _reaches(forward: Dict[int, List[int]], src: int, dst: int) -> bool:
    """True when ``dst`` is reachable from ``src`` over ``forward``."""
    if src == dst:
        return True
    stack = [src]
    visited = {src}
    while stack:
        for nxt in forward.get(stack.pop(), ()):
            if nxt == dst:
                return True
            if nxt not in visited:
                visited.add(nxt)
                stack.append(nxt)
    return False


def build_graph(records: Iterable[Any]) -> HBGraph:
    """Build an :class:`HBGraph` from a record iterable (live recorder
    contents or an offline trace via
    :func:`repro.audit.replay.iter_trace`)."""
    return HBGraph().observe_all(records)
