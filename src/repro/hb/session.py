"""Scoped provenance recording for happens-before analysis.

:class:`ProvenanceSession` mirrors the wiring pattern of
:class:`repro.audit.session.AuditSession`: with a telemetry hub already
active it piggybacks on the hub's trace recorder, flipping the
``provenance`` and ``lineage`` flags on for the duration (restored on
exit); with no hub active it installs itself as a minimal ambient hub
carrying an unfiltered in-memory recorder, so simulators built inside
the ``with`` block emit the full ``sched.exec`` + ``pkt.*`` stream the
:class:`~repro.hb.graph.HBGraph` builder needs.

The recorder is unbounded by default — a happens-before graph needs
every event of the run, not a ring suffix — so sessions are meant for
quick, scoped runs (the ``python -m repro hb`` CLI uses quick scales).
"""

from __future__ import annotations

from typing import Optional

from repro.sim.trace import TraceRecorder
from repro.telemetry import context

__all__ = ["ProvenanceSession"]


class ProvenanceSession:
    """Context manager that turns on provenance (+ lineage) recording.

    Parameters
    ----------
    max_records:
        Optional in-memory bound for the recorder installed when no
        telemetry hub is active; None (the default) keeps every record
        so the graph covers the whole run.
    """

    def __init__(self, max_records: Optional[int] = None) -> None:
        self.max_records = max_records
        # Hub surface for Simulator pickup when we are the ambient hub.
        self.trace: Optional[TraceRecorder] = None
        self.metrics = None
        self.profiler = None
        self._host_trace: Optional[TraceRecorder] = None
        self._restore_lineage = False
        self._restore_provenance = False
        self._owns_context = False

    def __enter__(self) -> "ProvenanceSession":
        hub = context.current_hub()
        if hub is not None and hub.trace is not None:
            self._host_trace = hub.trace
        else:
            self.trace = TraceRecorder(enabled=True,
                                       max_records=self.max_records)
            self._host_trace = self.trace
            context.activate(self)
            self._owns_context = True
        self._restore_lineage = self._host_trace.lineage
        self._restore_provenance = getattr(self._host_trace,
                                           "provenance", False)
        self._host_trace.lineage = True
        self._host_trace.provenance = True
        return self

    def __exit__(self, *exc) -> None:
        trace = self._host_trace
        if trace is not None:
            trace.lineage = self._restore_lineage
            trace.provenance = self._restore_provenance
        if self._owns_context:
            context.deactivate(self)
            self._owns_context = False
        self._host_trace = None

    def records(self):
        """The recorded stream (valid after the block when the session
        owned the recorder; with a host hub, read the hub's recorder)."""
        trace = self.trace if self.trace is not None else self._host_trace
        if trace is None:
            return []
        return trace.records()
