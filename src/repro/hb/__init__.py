"""Happens-before observatory over the scheduler provenance plane.

The schema-v5 ``sched.exec`` family (see :mod:`repro.telemetry.schema`)
records, for every executed simulator event, the entity whose state the
callback mutates, the event's logical sequence number, and its
*scheduling parent* — the event whose callback scheduled it.  This
package turns that stream, together with the v2 ``pkt.*`` lineage
events, into a first-class causal observability plane:

* :mod:`repro.hb.graph` — the :class:`~repro.hb.graph.HBGraph` builder:
  the happens-before DAG (program-order, scheduling, timer, message,
  and ACK edges) with stats, race enumeration, and DOT / Perfetto
  exporters;
* :mod:`repro.hb.detect` — the streaming scheduler-nondeterminism audit
  checker (same-timestamp event pairs on one entity with no causal
  path), registered in :func:`repro.audit.invariants.default_checkers`;
* :mod:`repro.hb.perturb` — the schedule-perturbation harness: re-run a
  scenario under a salted tie-break permutation
  (:func:`repro.sim.scheduler.tiebreak_permutation`) and assert the
  report fingerprint is bit-identical;
* :mod:`repro.hb.session` — :class:`~repro.hb.session.ProvenanceSession`,
  the context manager that switches provenance (and lineage) recording
  on for a scoped run;
* :mod:`repro.hb.cli` — ``python -m repro hb {stats|races|export|perturb}``.

Every fingerprint guarantee the repo makes — serial vs ``--jobs N``
byte-identity, chaos-sweep reproducibility — rests on same-timestamp
scheduler events commuting.  This package is what turns that assumption
into a checked invariant (statically via the race check, dynamically
via the perturbation harness).
"""

from repro.hb.detect import SchedulerNondeterminismChecker
from repro.hb.graph import HBGraph, build_graph
from repro.hb.perturb import PerturbationResult, perturb
from repro.hb.session import ProvenanceSession

__all__ = [
    "HBGraph", "build_graph",
    "SchedulerNondeterminismChecker",
    "PerturbationResult", "perturb",
    "ProvenanceSession",
]
