"""Unit helpers and protocol constants shared across the library.

Internally the simulator uses **seconds** for time, **bytes** for data
volume, and **bytes per second** for rates.  These helpers exist so that
experiment code can be written in the units the paper uses (milliseconds,
kilobytes, megabits per second) without sprinkling conversion factors
around.
"""

from __future__ import annotations

# ---------------------------------------------------------------------------
# Time
# ---------------------------------------------------------------------------

MILLISECOND = 1e-3
MICROSECOND = 1e-6


def ms(value: float) -> float:
    """Convert milliseconds to seconds."""
    return value * MILLISECOND


def us(value: float) -> float:
    """Convert microseconds to seconds."""
    return value * MICROSECOND


def to_ms(seconds: float) -> float:
    """Convert seconds to milliseconds."""
    return seconds / MILLISECOND


# ---------------------------------------------------------------------------
# Data volume
# ---------------------------------------------------------------------------

KB = 1000
MB = 1000 * 1000
KIB = 1024
MIB = 1024 * 1024


def kb(value: float) -> int:
    """Convert kilobytes (decimal, as used in the paper) to bytes."""
    return int(value * KB)


def mb(value: float) -> int:
    """Convert megabytes (decimal) to bytes."""
    return int(value * MB)


# ---------------------------------------------------------------------------
# Rates
# ---------------------------------------------------------------------------


def mbps(value: float) -> float:
    """Convert megabits per second to bytes per second."""
    return value * 1e6 / 8.0


def gbps(value: float) -> float:
    """Convert gigabits per second to bytes per second."""
    return value * 1e9 / 8.0


def kbps(value: float) -> float:
    """Convert kilobits per second to bytes per second."""
    return value * 1e3 / 8.0


def to_mbps(bytes_per_second: float) -> float:
    """Convert bytes per second to megabits per second."""
    return bytes_per_second * 8.0 / 1e6


# ---------------------------------------------------------------------------
# Protocol constants (paper §4.1)
# ---------------------------------------------------------------------------

#: Segment size on the wire, including the header (paper: 1500 B).
SEGMENT_SIZE = 1500

#: Transport/network header bytes carried by every packet.
HEADER_SIZE = 40

#: Payload bytes per full data segment.
MSS = SEGMENT_SIZE - HEADER_SIZE

#: Flow-control window advertised by receivers (paper: 141 KB, Windows XP).
FLOW_CONTROL_WINDOW = kb(141)

#: Default initial congestion window for TCP-family schemes (segments).
DEFAULT_INITIAL_WINDOW = 2

#: TCP-10's initial congestion window (segments).
LARGE_INITIAL_WINDOW = 10

#: Pacing Threshold: Halfback paces at most this many bytes (paper uses the
#: flow-control window / 141 KB, covering >95% of web transfers).
PACING_THRESHOLD = FLOW_CONTROL_WINDOW
