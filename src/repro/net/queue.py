"""Router egress queues.

The paper's experiments revolve around a single drop-tail bottleneck
queue sized in bytes (default: the path BDP, 115 KB).  :class:`DropTailQueue`
is the workhorse; :class:`REDQueue` is provided as an AQM extension for
the bufferbloat discussion (§6 notes AQM is complementary) and for
sensitivity studies.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional

from repro import fastpath
from repro.errors import ConfigurationError
from repro.net.packet import Packet

__all__ = ["QueueStats", "DropTailQueue", "REDQueue"]


class QueueStats:
    """Counters shared by all queue disciplines."""

    __slots__ = ("enqueued", "dropped", "dequeued", "bytes_enqueued",
                 "bytes_dropped", "peak_bytes")

    def __init__(self) -> None:
        self.enqueued = 0
        self.dropped = 0
        self.dequeued = 0
        self.bytes_enqueued = 0
        self.bytes_dropped = 0
        self.peak_bytes = 0

    def drop_rate(self) -> float:
        """Fraction of offered packets dropped."""
        offered = self.enqueued + self.dropped
        return self.dropped / offered if offered else 0.0


class DropTailQueue:
    """FIFO queue with a byte-capacity limit.

    A packet is dropped iff admitting it would push the queued byte count
    above ``capacity_bytes``.

    ``pending_bytes`` is the batched datapath's occupancy compensation
    (see :mod:`repro.net.link`): bytes of packets a packet-train plan
    already popped whose serialization *start* is still in the future.
    The unbatched execution dequeues a packet when its serialization
    starts, so such packets would still be queued at the current instant;
    counting them keeps admit/drop decisions and ``bytes_queued``
    byte-identical to the per-packet execution.  It is zero whenever the
    owning link runs the per-packet path.
    """

    def __init__(self, capacity_bytes: int) -> None:
        if capacity_bytes <= 0:
            raise ConfigurationError("queue capacity must be positive")
        self.capacity_bytes = capacity_bytes
        self._packets: Deque[Packet] = deque()
        self._bytes = 0
        self.pending_bytes = 0
        #: True once a sampling monitor watches this queue's occupancy
        #: (set via :meth:`mark_monitored`); the owning link then keeps
        #: per-packet events so mid-run samples see exact timing.
        self.monitored = False
        #: Owning link, set by :class:`~repro.net.link.Link` so monitor
        #: attachment can invalidate the link's cached fast-path
        #: predicate.
        self._owner = None
        self.stats = QueueStats()
        if fastpath.enabled() and type(self) is DropTailQueue:
            # Zero-overhead build: bind the variant with the drop-tail
            # admission test inlined (no virtual admit() dispatch).
            # Exact-type check: AQM subclasses override admit() with
            # dequeue-time state and must keep the dispatching path.
            self.enqueue = self._enqueue_nohook

    # ------------------------------------------------------------------

    def mark_monitored(self) -> None:
        """Record that a sampler reads this queue mid-run (disables the
        owning link's batched fast path so sample timing stays exact)."""
        self.monitored = True
        owner = self._owner
        if owner is not None:
            owner.refresh_fast_path()

    @property
    def bytes_queued(self) -> int:
        """Bytes currently waiting in the queue.

        Includes train-planned packets whose serialization has not yet
        started (``pending_bytes``) — the occupancy an unbatched
        execution would report at this instant.
        """
        return self._bytes + self.pending_bytes

    def __len__(self) -> int:
        return len(self._packets)

    def admit(self, packet: Packet) -> bool:
        """Hook deciding whether to admit ``packet``; drop-tail policy."""
        return (self._bytes + self.pending_bytes + packet.size
                <= self.capacity_bytes)

    def enqueue(self, packet: Packet) -> bool:
        """Try to queue ``packet``.  Returns False (and counts a drop) on
        overflow."""
        if not self.admit(packet):
            self.stats.dropped += 1
            self.stats.bytes_dropped += packet.size
            return False
        self._packets.append(packet)
        self._bytes += packet.size
        self.stats.enqueued += 1
        self.stats.bytes_enqueued += packet.size
        occupancy = self._bytes + self.pending_bytes
        if occupancy > self.stats.peak_bytes:
            self.stats.peak_bytes = occupancy
        return True

    def _enqueue_nohook(self, packet: Packet) -> bool:
        """:meth:`enqueue` for the zero-overhead build (fastpath): the
        drop-tail :meth:`admit` test is inlined, eliminating the virtual
        dispatch per offered packet.  Behavior-identical to the
        dispatching path for exactly-``DropTailQueue`` instances."""
        size = packet.size
        stats = self.stats
        occupancy = self._bytes + self.pending_bytes + size
        if occupancy > self.capacity_bytes:
            stats.dropped += 1
            stats.bytes_dropped += size
            return False
        self._packets.append(packet)
        self._bytes += size
        stats.enqueued += 1
        stats.bytes_enqueued += size
        if occupancy > stats.peak_bytes:
            stats.peak_bytes = occupancy
        return True

    def dequeue(self) -> Optional[Packet]:
        """Remove and return the head packet, or None when empty."""
        if not self._packets:
            return None
        packet = self._packets.popleft()
        self._bytes -= packet.size
        self.stats.dequeued += 1
        return packet

    def drain(self) -> List[Packet]:
        """Remove and return every queued packet (train planning).

        The caller owns the byte accounting from here: packets whose
        serialization start lies in the future must be re-counted via
        ``pending_bytes``.
        """
        packets = list(self._packets)
        self._packets.clear()
        self.stats.dequeued += len(packets)
        self._bytes = 0
        return packets


class REDQueue(DropTailQueue):
    """Random Early Detection (gentle RED) on top of the byte FIFO.

    Simplified RED: the drop probability ramps linearly from 0 at
    ``min_thresh`` to ``max_p`` at ``max_thresh`` of the *instantaneous*
    queue depth (an EWMA is overkill for the sensitivity study this
    supports).  Above ``max_thresh`` behaviour is gentle-RED: probability
    ramps from ``max_p`` to 1 at the capacity.
    """

    def __init__(
        self,
        capacity_bytes: int,
        min_thresh: float = 0.25,
        max_thresh: float = 0.75,
        max_p: float = 0.1,
        rng=None,
    ) -> None:
        super().__init__(capacity_bytes)
        if not 0 <= min_thresh < max_thresh <= 1:
            raise ConfigurationError("RED thresholds must satisfy 0<=min<max<=1")
        if not 0 < max_p <= 1:
            raise ConfigurationError("RED max_p must be in (0, 1]")
        self.min_bytes = int(min_thresh * capacity_bytes)
        self.max_bytes = int(max_thresh * capacity_bytes)
        self.max_p = max_p
        import random as _random

        self._rng = rng if rng is not None else _random.Random(0)

    def admit(self, packet: Packet) -> bool:
        if self._bytes + packet.size > self.capacity_bytes:
            return False
        depth = self._bytes
        if depth <= self.min_bytes:
            return True
        if depth <= self.max_bytes:
            span = self.max_bytes - self.min_bytes
            p = self.max_p * (depth - self.min_bytes) / span if span else self.max_p
        else:
            span = self.capacity_bytes - self.max_bytes
            extra = (depth - self.max_bytes) / span if span else 1.0
            p = self.max_p + (1.0 - self.max_p) * extra
        return self._rng.random() >= p
