"""Router egress queues.

The paper's experiments revolve around a single drop-tail bottleneck
queue sized in bytes (default: the path BDP, 115 KB).  :class:`DropTailQueue`
is the workhorse; :class:`REDQueue` is provided as an AQM extension for
the bufferbloat discussion (§6 notes AQM is complementary) and for
sensitivity studies.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from repro.errors import ConfigurationError
from repro.net.packet import Packet

__all__ = ["QueueStats", "DropTailQueue", "REDQueue"]


class QueueStats:
    """Counters shared by all queue disciplines."""

    __slots__ = ("enqueued", "dropped", "dequeued", "bytes_enqueued",
                 "bytes_dropped", "peak_bytes")

    def __init__(self) -> None:
        self.enqueued = 0
        self.dropped = 0
        self.dequeued = 0
        self.bytes_enqueued = 0
        self.bytes_dropped = 0
        self.peak_bytes = 0

    def drop_rate(self) -> float:
        """Fraction of offered packets dropped."""
        offered = self.enqueued + self.dropped
        return self.dropped / offered if offered else 0.0


class DropTailQueue:
    """FIFO queue with a byte-capacity limit.

    A packet is dropped iff admitting it would push the queued byte count
    above ``capacity_bytes``.
    """

    def __init__(self, capacity_bytes: int) -> None:
        if capacity_bytes <= 0:
            raise ConfigurationError("queue capacity must be positive")
        self.capacity_bytes = capacity_bytes
        self._packets: Deque[Packet] = deque()
        self._bytes = 0
        self.stats = QueueStats()

    # ------------------------------------------------------------------

    @property
    def bytes_queued(self) -> int:
        """Bytes currently waiting in the queue."""
        return self._bytes

    def __len__(self) -> int:
        return len(self._packets)

    def admit(self, packet: Packet) -> bool:
        """Hook deciding whether to admit ``packet``; drop-tail policy."""
        return self._bytes + packet.size <= self.capacity_bytes

    def enqueue(self, packet: Packet) -> bool:
        """Try to queue ``packet``.  Returns False (and counts a drop) on
        overflow."""
        if not self.admit(packet):
            self.stats.dropped += 1
            self.stats.bytes_dropped += packet.size
            return False
        self._packets.append(packet)
        self._bytes += packet.size
        self.stats.enqueued += 1
        self.stats.bytes_enqueued += packet.size
        if self._bytes > self.stats.peak_bytes:
            self.stats.peak_bytes = self._bytes
        return True

    def dequeue(self) -> Optional[Packet]:
        """Remove and return the head packet, or None when empty."""
        if not self._packets:
            return None
        packet = self._packets.popleft()
        self._bytes -= packet.size
        self.stats.dequeued += 1
        return packet


class REDQueue(DropTailQueue):
    """Random Early Detection (gentle RED) on top of the byte FIFO.

    Simplified RED: the drop probability ramps linearly from 0 at
    ``min_thresh`` to ``max_p`` at ``max_thresh`` of the *instantaneous*
    queue depth (an EWMA is overkill for the sensitivity study this
    supports).  Above ``max_thresh`` behaviour is gentle-RED: probability
    ramps from ``max_p`` to 1 at the capacity.
    """

    def __init__(
        self,
        capacity_bytes: int,
        min_thresh: float = 0.25,
        max_thresh: float = 0.75,
        max_p: float = 0.1,
        rng=None,
    ) -> None:
        super().__init__(capacity_bytes)
        if not 0 <= min_thresh < max_thresh <= 1:
            raise ConfigurationError("RED thresholds must satisfy 0<=min<max<=1")
        if not 0 < max_p <= 1:
            raise ConfigurationError("RED max_p must be in (0, 1]")
        self.min_bytes = int(min_thresh * capacity_bytes)
        self.max_bytes = int(max_thresh * capacity_bytes)
        self.max_p = max_p
        import random as _random

        self._rng = rng if rng is not None else _random.Random(0)

    def admit(self, packet: Packet) -> bool:
        if self._bytes + packet.size > self.capacity_bytes:
            return False
        depth = self._bytes
        if depth <= self.min_bytes:
            return True
        if depth <= self.max_bytes:
            span = self.max_bytes - self.min_bytes
            p = self.max_p * (depth - self.min_bytes) / span if span else self.max_p
        else:
            span = self.capacity_bytes - self.max_bytes
            extra = (depth - self.max_bytes) / span if span else 1.0
            p = self.max_p + (1.0 - self.max_p) * extra
        return self._rng.random() >= p
