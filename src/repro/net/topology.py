"""Topology construction and static routing.

:class:`Topology` tracks nodes and duplex connections and computes
shortest-path next-hop tables.  Two canonical builders are provided:

* :func:`access_network` — the paper's Emulab setup (Fig. 4): ``n`` sender
  hosts on 1 Gbps edges, one 15 Mbps bottleneck with 60 ms RTT, ``n``
  receiver hosts on 1 Gbps edges, and a drop-tail bottleneck buffer of one
  BDP (115 KB) by default.
* :func:`dumbbell` — a generic two-router dumbbell for sensitivity tests.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.chaos.context import current_profile
from repro.errors import TopologyError
from repro.net.link import Link
from repro.net.node import Host, Node, Router
from repro.net.queue import DropTailQueue
from repro.sim.simulator import Simulator
from repro.units import gbps, kb, mbps, ms

__all__ = ["Topology", "AccessNetwork", "access_network", "dumbbell"]


class Topology:
    """A collection of nodes plus duplex connections between them."""

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self.nodes: Dict[str, Node] = {}
        self.links: Dict[Tuple[str, str], Link] = {}
        self._adjacency: Dict[str, List[str]] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def add_host(self, name: str) -> Host:
        """Create and register a host."""
        return self._add_node(Host(self.sim, name))

    def add_router(self, name: str) -> Router:
        """Create and register a router."""
        return self._add_node(Router(self.sim, name))

    def _add_node(self, node: Node) -> Node:
        if node.name in self.nodes:
            raise TopologyError(f"duplicate node name {node.name!r}")
        self.nodes[node.name] = node
        self._adjacency[node.name] = []
        return node

    def connect(
        self,
        a: str,
        b: str,
        rate: float,
        delay: float,
        queue_bytes: Optional[int] = None,
        loss_rate: float = 0.0,
        reverse_queue_bytes: Optional[int] = None,
    ) -> Tuple[Link, Link]:
        """Create a duplex connection ``a <-> b``.

        ``queue_bytes`` bounds the egress queue of the ``a -> b`` direction
        (the direction that matters for a bottleneck); the reverse direction
        gets ``reverse_queue_bytes`` or the same bound.
        Returns the ``(a->b, b->a)`` link pair.
        """
        node_a = self._node(a)
        node_b = self._node(b)
        forward = Link(
            self.sim, f"{a}->{b}", node_b, rate, delay,
            queue=DropTailQueue(queue_bytes) if queue_bytes else None,
            loss_rate=loss_rate,
        )
        rq = reverse_queue_bytes if reverse_queue_bytes is not None else queue_bytes
        backward = Link(
            self.sim, f"{b}->{a}", node_a, rate, delay,
            queue=DropTailQueue(rq) if rq else None,
            loss_rate=loss_rate,
        )
        self.links[(a, b)] = forward
        self.links[(b, a)] = backward
        self._adjacency[a].append(b)
        self._adjacency[b].append(a)
        return forward, backward

    def _node(self, name: str) -> Node:
        node = self.nodes.get(name)
        if node is None:
            raise TopologyError(f"unknown node {name!r}")
        return node

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    def compute_routes(self) -> None:
        """Fill every node's next-hop table with shortest-path (hop count)
        routes toward every *host*.  Ties break on neighbor insertion
        order, keeping the computation deterministic."""
        hosts = [n for n in self.nodes.values() if isinstance(n, Host)]
        for target in hosts:
            parents = self._bfs_parents(target.name)
            for node in self.nodes.values():
                if node.name == target.name:
                    continue
                next_hop = self._first_hop(parents, node.name, target.name)
                if next_hop is not None:
                    node.routes[target.name] = self.links[(node.name, next_hop)]

    def _bfs_parents(self, root: str) -> Dict[str, str]:
        parents: Dict[str, str] = {root: root}
        frontier = deque([root])
        while frontier:
            here = frontier.popleft()
            for neighbor in self._adjacency[here]:
                if neighbor not in parents:
                    parents[neighbor] = here
                    frontier.append(neighbor)
        return parents

    @staticmethod
    def _first_hop(parents: Dict[str, str], src: str, dst: str) -> Optional[str]:
        # parents[] points toward dst (BFS rooted at dst), so the next hop
        # from src is simply its parent in that tree.
        if src not in parents:
            return None
        return parents[src]

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def host(self, name: str) -> Host:
        """The named host (TypeError-free accessor)."""
        node = self._node(name)
        if not isinstance(node, Host):
            raise TopologyError(f"{name!r} is not a host")
        return node

    def link(self, a: str, b: str) -> Link:
        """The ``a -> b`` directed link."""
        key = (a, b)
        if key not in self.links:
            raise TopologyError(f"no link {a!r} -> {b!r}")
        return self.links[key]


@dataclass
class AccessNetwork:
    """The built Fig. 4 topology plus its derived constants."""

    topology: Topology
    senders: List[Host]
    receivers: List[Host]
    bottleneck: Link
    reverse_bottleneck: Link
    bottleneck_rate: float
    rtt: float
    buffer_bytes: int
    #: bandwidth-delay product of the sender->receiver path, in bytes.
    bdp_bytes: int = field(init=False)

    def __post_init__(self) -> None:
        self.bdp_bytes = int(self.bottleneck_rate * self.rtt)

    def pair(self, index: int) -> Tuple[Host, Host]:
        """The ``index``-th (sender, receiver) host pair."""
        return self.senders[index], self.receivers[index]


def access_network(
    sim: Simulator,
    n_pairs: int = 1,
    bottleneck_rate: float = mbps(15),
    rtt: float = ms(60),
    buffer_bytes: int = kb(115),
    edge_rate: float = gbps(1),
    edge_loss: float = 0.0,
) -> AccessNetwork:
    """Build the paper's Emulab topology (Fig. 4).

    ``n_pairs`` sender hosts connect through routers ``r1 -> r2`` (the
    bottleneck, with a drop-tail buffer of ``buffer_bytes``) to ``n_pairs``
    receiver hosts.  Propagation delays are chosen so the end-to-end RTT is
    ``rtt``: edges carry 1/30 of the one-way delay each, the bottleneck the
    rest — matching the paper's single-bottleneck RTT of 60 ms.
    """
    if n_pairs < 1:
        raise TopologyError("need at least one sender/receiver pair")
    topo = Topology(sim)
    r1 = topo.add_router("r1")
    r2 = topo.add_router("r2")
    one_way = rtt / 2.0
    edge_delay = one_way / 30.0
    bottleneck_delay = one_way - 2 * edge_delay

    senders: List[Host] = []
    receivers: List[Host] = []
    for i in range(n_pairs):
        sender = topo.add_host(f"s{i}")
        receiver = topo.add_host(f"d{i}")
        _, to_sender = topo.connect(sender.name, r1.name, edge_rate,
                                    edge_delay, loss_rate=edge_loss)
        to_receiver, _ = topo.connect(r2.name, receiver.name, edge_rate,
                                      edge_delay, loss_rate=edge_loss)
        # Last-mile edges have a single structural feeder (the adjacent
        # bottleneck): data toward d_i only ever arrives at r2 over
        # r1->r2, and ACKs toward s_i only arrive at r1 over r2->r1, so
        # the batched datapath may plan cut-through deliveries across
        # them (see repro.net.link).
        to_receiver.cut_through = True
        to_sender.cut_through = True
        senders.append(sender)
        receivers.append(receiver)

    forward, backward = topo.connect(
        r1.name, r2.name, bottleneck_rate, bottleneck_delay,
        queue_bytes=buffer_bytes,
    )
    if n_pairs == 1:
        # With one pair each bottleneck direction is also sole-feeder
        # (only s0's edge feeds r1->r2, only d0's edge feeds r2->r1) —
        # the PlanetLab per-path topologies hit this shape ~2.6K times
        # per figure run.
        forward.cut_through = True
        backward.cut_through = True
    topo.compute_routes()
    network = AccessNetwork(
        topology=topo,
        senders=senders,
        receivers=receivers,
        bottleneck=forward,
        reverse_bottleneck=backward,
        bottleneck_rate=bottleneck_rate,
        rtt=rtt,
        buffer_bytes=buffer_bytes,
    )
    # Ambient chaos (the --chaos flag / repro.chaos.session): every
    # access network built while a profile is active gets its bottleneck
    # impairments attached, without threading chaos through the 17
    # experiment signatures.
    profile = current_profile()
    if profile is not None:
        profile.apply(network)
    return network


def dumbbell(
    sim: Simulator,
    n_pairs: int,
    bottleneck_rate: float,
    rtt: float,
    buffer_bytes: int,
    edge_rate: Optional[float] = None,
) -> AccessNetwork:
    """A generic dumbbell: like :func:`access_network` with free parameters."""
    return access_network(
        sim,
        n_pairs=n_pairs,
        bottleneck_rate=bottleneck_rate,
        rtt=rtt,
        buffer_bytes=buffer_bytes,
        edge_rate=edge_rate if edge_rate is not None else gbps(1),
    )
