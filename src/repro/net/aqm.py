"""CoDel active queue management (extension).

§6 notes that AQM (CoDel [27], PIE [29]) attacks bufferbloat by
reducing queueing *delay* and is "fully complementary" to reducing the
number of RTTs — "the improvements multiply".  This module provides a
simplified CoDel so that claim can be exercised in simulation (see
``tests/net/test_aqm.py`` and the AQM sensitivity example).

The control law follows the CoDel sketch: track each packet's sojourn
time; once sojourn exceeds ``target`` continuously for ``interval``,
enter a dropping state that drops one packet and then again after
``interval / sqrt(count)``, leaving the state when sojourn falls below
target.  Sojourn is evaluated at dequeue, which is where CoDel acts.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Callable, Deque, Optional

from repro.errors import ConfigurationError
from repro.net.packet import Packet
from repro.net.queue import DropTailQueue

__all__ = ["CoDelQueue"]

#: CoDel's recommended target sojourn time (5 ms).
DEFAULT_TARGET = 0.005
#: CoDel's recommended sliding interval (100 ms).
DEFAULT_INTERVAL = 0.100


class CoDelQueue(DropTailQueue):
    """Drop-tail capacity + CoDel dequeue-time dropping.

    Parameters
    ----------
    capacity_bytes:
        Hard byte bound (CoDel still needs a physical buffer).
    clock:
        Callable returning current simulated time (pass ``lambda:
        sim.now``); queues are below the simulator layer so they take
        the clock explicitly.
    target, interval:
        The CoDel constants.
    """

    def __init__(
        self,
        capacity_bytes: int,
        clock: Callable[[], float],
        target: float = DEFAULT_TARGET,
        interval: float = DEFAULT_INTERVAL,
    ) -> None:
        super().__init__(capacity_bytes)
        if target <= 0 or interval <= 0:
            raise ConfigurationError("target and interval must be positive")
        self.clock = clock
        self.target = target
        self.interval = interval
        self._entry_times: Deque[float] = deque()
        self._first_above: Optional[float] = None
        self._dropping = False
        self._drop_next = 0.0
        self._drop_count = 0
        self.codel_drops = 0

    # ------------------------------------------------------------------

    def enqueue(self, packet: Packet) -> bool:
        admitted = super().enqueue(packet)
        if admitted:
            self._entry_times.append(self.clock())
        return admitted

    def dequeue(self) -> Optional[Packet]:
        while True:
            packet = super().dequeue()
            if packet is None:
                self._first_above = None
                self._dropping = False
                return None
            sojourn = self.clock() - self._entry_times.popleft()
            if self._should_drop(sojourn):
                self.codel_drops += 1
                self.stats.dropped += 1
                self.stats.bytes_dropped += packet.size
                continue  # drop and look at the next packet
            return packet

    # ------------------------------------------------------------------

    def _should_drop(self, sojourn: float) -> bool:
        now = self.clock()
        if sojourn < self.target:
            self._first_above = None
            self._dropping = False
            return False
        if self._first_above is None:
            self._first_above = now + self.interval
            return False
        if self._dropping:
            if now >= self._drop_next:
                self._drop_count += 1
                self._drop_next = now + self.interval / math.sqrt(self._drop_count)
                return True
            return False
        if now >= self._first_above:
            self._dropping = True
            self._drop_count = 1
            self._drop_next = now + self.interval
            return True
        return False
