"""Network nodes: hosts and routers.

Routing is static: the topology computes a next-hop link per destination
host for every node (shortest path), so the forwarding step is a single
dictionary lookup.  Hosts demultiplex arriving packets to transport
endpoints by flow id.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Protocol

from repro.errors import TopologyError
from repro.net.link import Link
from repro.net.packet import Packet
from repro.telemetry.schema import EV_PKT_SEND

__all__ = ["Endpoint", "Node", "Host", "Router"]


class Endpoint(Protocol):
    """Anything a host can deliver packets to (transport endpoints)."""

    def on_packet(self, packet: Packet) -> None:  # pragma: no cover - protocol
        ...


class Node:
    """Base node: owns a next-hop table of destination host -> link."""

    #: True for transit nodes that forward every received packet; the
    #: batched link datapath keys cut-through planning on this (a
    #: delivery to a non-forwarding node always terminates the chain).
    FORWARDS = False

    def __init__(self, sim, name: str) -> None:
        self.sim = sim
        self.name = name
        self.routes: Dict[str, Link] = {}

    def route_for(self, dst: str) -> Link:
        """Next-hop link toward host ``dst``."""
        link = self.routes.get(dst)
        if link is None:
            raise TopologyError(f"{self.name}: no route to {dst!r}")
        return link

    def forward(self, packet: Packet) -> None:
        """Send ``packet`` one hop toward its destination."""
        packet.hops += 1
        if packet.hops > 64:
            raise TopologyError(f"routing loop detected for {packet.describe()}")
        self.route_for(packet.dst).send(packet)

    def receive(self, packet: Packet) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name}>"


class Router(Node):
    """A store-and-forward router: every received packet is forwarded."""

    FORWARDS = True

    def receive(self, packet: Packet) -> None:
        if packet.dst == self.name:
            raise TopologyError(f"router {self.name} cannot terminate flows")
        self.forward(packet)


class Host(Node):
    """An end host: terminates flows and originates packets.

    Transport endpoints register themselves per flow id; packets for
    unknown flows are handed to ``default_handler`` if set (used by
    listening servers to spawn receivers on SYN), otherwise dropped and
    counted.
    """

    def __init__(self, sim, name: str) -> None:
        super().__init__(sim, name)
        self._endpoints: Dict[int, Endpoint] = {}
        self.default_handler: Optional[Callable[[Packet], None]] = None
        self.orphan_packets = 0
        # Cached recorder (rebound when sim.trace is reassigned) so the
        # per-packet lineage guard in send() is a single attribute check.
        self._trace = sim.trace
        sim.watch_trace(self._rebind_trace)

    def _rebind_trace(self, recorder) -> None:
        self._trace = recorder

    # ------------------------------------------------------------------
    # Endpoint registry
    # ------------------------------------------------------------------

    def register(self, flow_id: int, endpoint: Endpoint) -> None:
        """Bind ``endpoint`` to ``flow_id``; at most one per flow."""
        if flow_id in self._endpoints:
            raise TopologyError(f"{self.name}: flow {flow_id} already bound")
        self._endpoints[flow_id] = endpoint

    def unregister(self, flow_id: int) -> None:
        """Remove the binding for ``flow_id`` (idempotent)."""
        self._endpoints.pop(flow_id, None)

    def endpoint_for(self, flow_id: int) -> Optional[Endpoint]:
        """The endpoint bound to ``flow_id``, if any."""
        return self._endpoints.get(flow_id)

    # ------------------------------------------------------------------
    # Datapath
    # ------------------------------------------------------------------

    def send(self, packet: Packet) -> None:
        """Originate ``packet`` from this host."""
        if packet.src != self.name:
            raise TopologyError(
                f"{self.name} asked to send packet with src={packet.src!r}"
            )
        trace = self._trace
        if trace.lineage:
            # Span creation: every packet's life starts here, with enough
            # header detail for the audit checkers to work stream-only.
            trace.record(
                self.sim.now, EV_PKT_SEND, self.name,
                type=packet.kind.value, dst=packet.dst, seq=packet.seq,
                ack=packet.ack, sack=packet.sack,
                retransmit=packet.retransmit,
                proactive=packet.proactive, **packet.lineage_detail(),
            )
        self.forward(packet)

    def receive(self, packet: Packet) -> None:
        if packet.dst != self.name:
            # Hosts are not transit nodes in any topology we build.
            raise TopologyError(
                f"host {self.name} received transit packet for {packet.dst!r}"
            )
        endpoint = self._endpoints.get(packet.flow_id)
        if endpoint is not None:
            endpoint.on_packet(packet)
        elif self.default_handler is not None:
            self.default_handler(packet)
        else:
            self.orphan_packets += 1
