"""Link and queue monitors.

Monitors sample state at a fixed period on the simulator clock and keep
the samples in memory.  Fig. 15 (throughput timelines) uses per-flow
delivery counters binned at 60 ms; utilization sweeps use
:class:`LinkUtilizationMonitor` over the bottleneck.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.errors import ConfigurationError
from repro.net.link import Link
from repro.net.packet import Packet

__all__ = [
    "UtilizationSample",
    "LinkUtilizationMonitor",
    "QueueDepthMonitor",
    "FlowThroughputMonitor",
]


@dataclass(frozen=True)
class UtilizationSample:
    """One sampling interval of a link."""

    time: float
    utilization: float
    bytes_delivered: int


class LinkUtilizationMonitor:
    """Samples a link's delivered bytes every ``period`` seconds."""

    def __init__(self, sim, link: Link, period: float = 0.1) -> None:
        if period <= 0:
            raise ConfigurationError("monitor period must be positive")
        self.sim = sim
        self.link = link
        self.period = period
        self.samples: List[UtilizationSample] = []
        self._last_bytes = link.stats.bytes_delivered
        sim.schedule(period, self._sample)

    def _sample(self) -> None:
        delivered = self.link.stats.bytes_delivered
        delta = delivered - self._last_bytes
        self._last_bytes = delivered
        capacity = self.link.rate * self.period
        self.samples.append(
            UtilizationSample(self.sim.now, delta / capacity, delta)
        )
        self.sim.schedule(self.period, self._sample)

    def mean_utilization(self, since: float = 0.0) -> float:
        """Mean sampled utilization from ``since`` onward."""
        values = [s.utilization for s in self.samples if s.time >= since]
        return sum(values) / len(values) if values else 0.0


class QueueDepthMonitor:
    """Samples a queue's byte depth every ``period`` seconds."""

    def __init__(self, sim, queue, period: float = 0.01) -> None:
        if period <= 0:
            raise ConfigurationError("monitor period must be positive")
        self.sim = sim
        self.queue = queue
        self.period = period
        self.times: List[float] = []
        self.depths: List[int] = []
        sim.schedule(period, self._sample)

    def _sample(self) -> None:
        self.times.append(self.sim.now)
        self.depths.append(self.queue.bytes_queued)
        self.sim.schedule(self.period, self._sample)

    def mean_depth(self) -> float:
        """Mean sampled queue depth in bytes."""
        return sum(self.depths) / len(self.depths) if self.depths else 0.0


class FlowThroughputMonitor:
    """Counts payload bytes delivered per flow in fixed time bins.

    Receivers call :meth:`on_delivery` for every accepted data packet; the
    monitor assigns the bytes to ``floor(now / bin)``.  This reproduces the
    paper's Fig. 15 methodology ("count the number of successfully
    transmitted packets in every 60 ms").
    """

    def __init__(self, bin_width: float = 0.060) -> None:
        if bin_width <= 0:
            raise ConfigurationError("bin width must be positive")
        self.bin_width = bin_width
        self._bins: Dict[int, Dict[int, int]] = {}

    def on_delivery(self, time: float, packet: Packet) -> None:
        """Record delivery of ``packet`` at ``time``."""
        index = int(time / self.bin_width)
        per_flow = self._bins.setdefault(packet.flow_id, {})
        per_flow[index] = per_flow.get(index, 0) + packet.payload

    def series(self, flow_id: int, until: float) -> List[float]:
        """Throughput in bytes/second per bin for ``flow_id`` up to
        ``until`` (missing bins are zero)."""
        per_flow = self._bins.get(flow_id, {})
        n_bins = int(until / self.bin_width) + 1
        return [
            per_flow.get(i, 0) / self.bin_width for i in range(n_bins)
        ]

    def flows(self) -> List[int]:
        """Flow ids with at least one delivery."""
        return sorted(self._bins)
