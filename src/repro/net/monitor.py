"""Link and queue monitors.

Monitors sample state at a fixed period on the simulator clock and keep
the samples in memory.  Fig. 15 (throughput timelines) uses per-flow
delivery counters binned at 60 ms; utilization sweeps use
:class:`LinkUtilizationMonitor` over the bottleneck.

Sampling monitors also publish into the simulator's telemetry metrics
registry (``monitor.link_utilization``, ``monitor.queue_depth`` time-
weighted histograms) — a no-op when telemetry is off — and support a
``horizon`` / :meth:`~PeriodicMonitor.stop` so their self-rescheduling
sample events cannot keep the event loop alive after the workload
completes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.errors import ConfigurationError
from repro.net.link import Link
from repro.net.packet import Packet

__all__ = [
    "UtilizationSample",
    "PeriodicMonitor",
    "LinkUtilizationMonitor",
    "QueueDepthMonitor",
    "FlowThroughputMonitor",
]


@dataclass(frozen=True)
class UtilizationSample:
    """One sampling interval of a link."""

    time: float
    utilization: float
    bytes_delivered: int


class PeriodicMonitor:
    """Base for self-rescheduling samplers with a stop/horizon.

    Parameters
    ----------
    sim:
        The simulator to sample on.
    period:
        Seconds between samples (must be positive).
    horizon:
        Optional absolute simulated time after which sampling stops on
        its own; without it (and without :meth:`stop`) the pending
        sample event would keep an otherwise-drained event loop alive
        forever.
    """

    def __init__(self, sim, period: float, horizon: Optional[float] = None) -> None:
        if period <= 0:
            raise ConfigurationError("monitor period must be positive")
        if horizon is not None and horizon < 0:
            raise ConfigurationError("monitor horizon must be non-negative")
        self.sim = sim
        self.period = period
        self.horizon = horizon
        self._stopped = False
        self._handle = sim.schedule(period, self._tick)

    @property
    def running(self) -> bool:
        """True while future samples are scheduled."""
        return not self._stopped

    def stop(self) -> None:
        """Cancel the pending sample; no further samples are taken."""
        self._stopped = True
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def _tick(self) -> None:
        if self._stopped:
            return
        self._handle = None
        self._sample()
        if self.horizon is not None and self.sim.now >= self.horizon:
            self._stopped = True
            return
        self._handle = self.sim.schedule(self.period, self._tick)

    def _sample(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class LinkUtilizationMonitor(PeriodicMonitor):
    """Samples a link's delivered bytes every ``period`` seconds."""

    def __init__(self, sim, link: Link, period: float = 0.1,
                 horizon: Optional[float] = None) -> None:
        self.link = link
        self.samples: List[UtilizationSample] = []
        self._last_bytes = link.stats.bytes_delivered
        self._m_utilization = sim.metrics.histogram("monitor.link_utilization")
        # Mid-run samples need exact delivery-counter timing, so the
        # watched link keeps per-packet events (no train batching).
        link.mark_monitored()
        super().__init__(sim, period, horizon=horizon)

    def _sample(self) -> None:
        delivered = self.link.stats.bytes_delivered
        delta = delivered - self._last_bytes
        self._last_bytes = delivered
        capacity = self.link.rate * self.period
        utilization = delta / capacity
        self.samples.append(
            UtilizationSample(self.sim.now, utilization, delta)
        )
        self._m_utilization.observe(self.sim.now, utilization)

    def mean_utilization(self, since: float = 0.0) -> float:
        """Mean sampled utilization from ``since`` onward."""
        values = [s.utilization for s in self.samples if s.time >= since]
        return sum(values) / len(values) if values else 0.0


class QueueDepthMonitor(PeriodicMonitor):
    """Samples a queue's byte depth every ``period`` seconds."""

    def __init__(self, sim, queue, period: float = 0.01,
                 horizon: Optional[float] = None) -> None:
        self.queue = queue
        self.times: List[float] = []
        self.depths: List[int] = []
        self._m_depth = sim.metrics.histogram("monitor.queue_depth")
        # Mid-run occupancy samples need exact dequeue timing, so the
        # owning link keeps per-packet events (no train batching).
        mark = getattr(queue, "mark_monitored", None)
        if mark is not None:
            mark()
        super().__init__(sim, period, horizon=horizon)

    def _sample(self) -> None:
        self.times.append(self.sim.now)
        self.depths.append(self.queue.bytes_queued)
        self._m_depth.observe(self.sim.now, self.queue.bytes_queued)

    def mean_depth(self) -> float:
        """Mean sampled queue depth in bytes."""
        return sum(self.depths) / len(self.depths) if self.depths else 0.0


class FlowThroughputMonitor:
    """Counts payload bytes delivered per flow in fixed time bins.

    Receivers call :meth:`on_delivery` for every accepted data packet; the
    monitor assigns the bytes to ``floor(now / bin)``.  This reproduces the
    paper's Fig. 15 methodology ("count the number of successfully
    transmitted packets in every 60 ms").
    """

    def __init__(self, bin_width: float = 0.060) -> None:
        if bin_width <= 0:
            raise ConfigurationError("bin width must be positive")
        self.bin_width = bin_width
        self._bins: Dict[int, Dict[int, int]] = {}

    def on_delivery(self, time: float, packet: Packet) -> None:
        """Record delivery of ``packet`` at ``time``."""
        index = int(time / self.bin_width)
        per_flow = self._bins.setdefault(packet.flow_id, {})
        per_flow[index] = per_flow.get(index, 0) + packet.payload

    def series(self, flow_id: int, until: float) -> List[float]:
        """Throughput in bytes/second per bin for ``flow_id`` up to
        ``until`` (missing bins are zero)."""
        per_flow = self._bins.get(flow_id, {})
        n_bins = int(until / self.bin_width) + 1
        return [
            per_flow.get(i, 0) / self.bin_width for i in range(n_bins)
        ]

    def flows(self) -> List[int]:
        """Flow ids with at least one delivery."""
        return sorted(self._bins)
