"""Packet network substrate (substrate 2): packets, links, queues,
nodes, topologies and monitors."""

from repro.net.aqm import CoDelQueue
from repro.net.link import Link, LinkStats
from repro.net.monitor import (
    FlowThroughputMonitor,
    LinkUtilizationMonitor,
    PeriodicMonitor,
    QueueDepthMonitor,
    UtilizationSample,
)
from repro.net.node import Host, Node, Router
from repro.net.packet import Packet, PacketType
from repro.net.queue import DropTailQueue, QueueStats, REDQueue
from repro.net.topology import AccessNetwork, Topology, access_network, dumbbell

__all__ = [
    "AccessNetwork",
    "CoDelQueue",
    "DropTailQueue",
    "FlowThroughputMonitor",
    "Host",
    "Link",
    "LinkStats",
    "LinkUtilizationMonitor",
    "PeriodicMonitor",
    "Node",
    "Packet",
    "PacketType",
    "QueueDepthMonitor",
    "QueueStats",
    "REDQueue",
    "Router",
    "Topology",
    "UtilizationSample",
    "access_network",
    "dumbbell",
]
