"""Unidirectional links.

A :class:`Link` models one direction of a wire: an egress queue at the
sending side, a serializer limited to ``rate`` bytes/second (one packet
at a time), a fixed propagation ``delay``, and an optional random loss
process applied in flight (used for wireless access profiles).

Beyond the built-in Bernoulli loss, a link carries an **impairment
pipeline** (see :mod:`repro.chaos`): attached impairments judge every
serialized packet (drop it, corrupt it, delay it) and may clone offered
packets (duplicating middleboxes).  The pipeline is empty by default
and every hook sits behind a single ``if self._impairments`` check, so
chaos-off runs pay one falsy test per packet.

Full-duplex connectivity is built from two links; see
:meth:`repro.net.topology.Topology.connect`.
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import ConfigurationError
from repro.net.packet import Packet
from repro.net.queue import DropTailQueue
from repro.telemetry.schema import (
    EV_CHAOS_CLONE, EV_CHAOS_CORRUPT, EV_LINK_LOSS, EV_PKT_DELIVER,
    EV_PKT_ENQUEUE, EV_PKT_TX, EV_QUEUE_DROP,
)

__all__ = ["Link", "LinkStats"]


class LinkStats:
    """Delivery counters for one link direction."""

    __slots__ = ("packets_sent", "bytes_sent", "packets_delivered",
                 "bytes_delivered", "packets_lost_inflight",
                 "packets_chaos_dropped", "packets_corrupted")

    def __init__(self) -> None:
        self.packets_sent = 0
        self.bytes_sent = 0
        self.packets_delivered = 0
        self.bytes_delivered = 0
        self.packets_lost_inflight = 0
        #: In-flight losses decided by an attached impairment (subset of
        #: the chaos pipeline; disjoint from ``packets_lost_inflight``,
        #: which counts the built-in Bernoulli process).
        self.packets_chaos_dropped = 0
        #: Packets delivered with the ``corrupted`` flag set.
        self.packets_corrupted = 0


class Link:
    """One direction of a point-to-point link.

    Parameters
    ----------
    sim:
        The simulator this link schedules on.
    name:
        Diagnostic name, e.g. ``"r1->r2"``.
    dst:
        The receiving node (anything with a ``receive(packet)`` method).
    rate:
        Serialization rate in **bytes per second**.
    delay:
        One-way propagation delay in seconds.
    queue:
        Egress queue; defaults to a large drop-tail queue (effectively
        unbounded for edge links).
    loss_rate:
        Probability each serialized packet is lost in flight.
    """

    #: Happens-before partition (``Simulator._event_entity``): the
    #: propagation pipe is independent of the serializer.  ``_deliver``
    #: touches only the delivery counters and ``dst.receive``; it never
    #: reads the egress queue, ``_busy``, or the loss RNG, so a delivery
    #: commutes with a same-instant ``_finish_transmission`` of a later
    #: packet and must not share an entity with the serializer side.
    HB_PARTITIONS = {"_deliver": "pipe"}

    def __init__(
        self,
        sim,
        name: str,
        dst,
        rate: float,
        delay: float,
        queue: Optional[DropTailQueue] = None,
        loss_rate: float = 0.0,
    ) -> None:
        if rate <= 0:
            raise ConfigurationError(f"link {name!r}: rate must be positive")
        if delay < 0:
            raise ConfigurationError(f"link {name!r}: delay must be non-negative")
        if not 0.0 <= loss_rate < 1.0:
            raise ConfigurationError(f"link {name!r}: loss_rate must be in [0,1)")
        self.sim = sim
        self.name = name
        self.dst = dst
        self.rate = rate
        self.delay = delay
        self.queue = queue if queue is not None else DropTailQueue(1 << 30)
        self.loss_rate = loss_rate
        self._loss_rng = sim.streams.get(f"link-loss:{name}") if loss_rate else None
        self._busy = False
        self._impairments: List = []
        self.stats = LinkStats()
        # Cached recorder (rebound by the simulator when sim.trace is
        # reassigned): the per-packet lineage guard below is a single
        # attribute check when tracing is off.
        self._trace = sim.trace
        sim.watch_trace(self._rebind_trace)
        # Aggregate (all-links) telemetry; instruments resolve to no-ops
        # when the registry is disabled.
        metrics = sim.metrics
        self._m_tx_packets = metrics.counter("link.tx_packets")
        self._m_tx_bytes = metrics.counter("link.tx_bytes")
        self._m_delivered_bytes = metrics.counter("link.delivered_bytes")
        self._m_inflight_loss = metrics.counter("link.inflight_loss")
        self._m_queue_drops = metrics.counter("queue.drops")
        self._m_queue_drop_bytes = metrics.counter("queue.drop_bytes")
        self._m_chaos_drops = metrics.counter("chaos.drops")
        self._m_chaos_corrupt = metrics.counter("chaos.corrupted")

    # ------------------------------------------------------------------

    def _rebind_trace(self, recorder) -> None:
        self._trace = recorder

    # ------------------------------------------------------------------

    @property
    def busy(self) -> bool:
        """True while a packet is being serialized."""
        return self._busy

    def set_loss(self, loss_rate: float) -> None:
        """Install (or change) this link's random in-flight loss rate."""
        if not 0.0 <= loss_rate < 1.0:
            raise ConfigurationError(f"link {self.name!r}: loss_rate must be in [0,1)")
        self.loss_rate = loss_rate
        self._loss_rng = (
            self.sim.streams.get(f"link-loss:{self.name}") if loss_rate else None
        )

    # ------------------------------------------------------------------
    # Impairment pipeline (see repro.chaos)
    # ------------------------------------------------------------------

    @property
    def impairments(self) -> List:
        """Attached chaos impairments, in judging order (read-only view)."""
        return list(self._impairments)

    def attach_impairment(self, impairment) -> None:
        """Install ``impairment`` on this link (bound, then appended)."""
        impairment.bind(self)
        self._impairments.append(impairment)

    def detach_impairment(self, impairment) -> None:
        """Remove one attached impairment (unbinding where supported)."""
        if impairment in self._impairments:
            self._impairments.remove(impairment)
            unbind = getattr(impairment, "unbind", None)
            if unbind is not None:
                unbind()

    def detach_impairments(self) -> None:
        """Remove every impairment (unbinding timers where supported)."""
        for impairment in self._impairments:
            unbind = getattr(impairment, "unbind", None)
            if unbind is not None:
                unbind()
        self._impairments.clear()

    # ------------------------------------------------------------------

    def transmission_time(self, packet: Packet) -> float:
        """Seconds needed to serialize ``packet`` at this link's rate."""
        return packet.size / self.rate

    def send(self, packet: Packet) -> None:
        """Offer ``packet`` to this link (queue, then serialize in order).

        Attached impairments may clone the offered packet (in-network
        duplication); clones are admitted directly so a clone is never
        itself re-judged into further clones.
        """
        if self._impairments:
            trace = self._trace
            for impairment in self._impairments:
                for clone in impairment.clones(packet):
                    if trace.lineage:
                        # The causal edge the audit layer needs: a clone
                        # carries the original's headers, so when it is
                        # the copy that survives, the sender learns the
                        # same contents the original would have taught.
                        trace.record(self.sim.now, EV_CHAOS_CLONE,
                                     self.name, clone_of=packet.uid,
                                     chaos=impairment.name,
                                     **clone.lineage_detail())
                    self._admit(clone)
        self._admit(packet)

    def _admit(self, packet: Packet) -> None:
        if not self.queue.enqueue(packet):
            self.sim.note_drop(packet.flow_id)
            self._m_queue_drops.inc()
            self._m_queue_drop_bytes.inc(packet.size)
            self._trace.record(
                self.sim.now, EV_QUEUE_DROP, self.name,
                packet=packet.describe(), uid=packet.uid,
            )
            return
        trace = self._trace
        if trace.lineage:
            trace.record(self.sim.now, EV_PKT_ENQUEUE, self.name,
                         **packet.lineage_detail())
        if not self._busy:
            self._start_transmission()

    # ------------------------------------------------------------------

    def _start_transmission(self) -> None:
        packet = self.queue.dequeue()
        if packet is None:
            self._busy = False
            return
        self._busy = True
        self.stats.packets_sent += 1
        self.stats.bytes_sent += packet.size
        self._m_tx_packets.inc()
        self._m_tx_bytes.inc(packet.size)
        transmission_time = self.transmission_time(packet)
        trace = self._trace
        if trace.lineage:
            # ``ser`` (schema v4): span consumers need where serialization
            # ends inside the tx -> deliver window, and the rate may have
            # changed by delivery time (chaos bandwidth modulation).
            trace.record(self.sim.now, EV_PKT_TX, self.name,
                         ser=transmission_time, **packet.lineage_detail())
        self.sim.schedule(transmission_time, self._finish_transmission, packet)

    def _finish_transmission(self, packet: Packet) -> None:
        if self._loss_rng is not None and self._loss_rng.random() < self.loss_rate:
            self.stats.packets_lost_inflight += 1
            self._m_inflight_loss.inc()
            self.sim.note_drop(packet.flow_id)
            self._trace.record(
                self.sim.now, EV_LINK_LOSS, self.name,
                packet=packet.describe(), uid=packet.uid,
            )
        elif self._impairments:
            self._finish_impaired(packet)
        else:
            self.sim.schedule(self.delay, self._deliver, packet)
        # Keep the pipe full: start the next packet immediately.
        self._busy = False
        if len(self.queue):
            self._start_transmission()

    def _finish_impaired(self, packet: Packet) -> None:
        """Serialization finished on an impaired link: run the pipeline.

        The first impairment to return a drop reason wins (the packet is
        recorded as an in-flight loss, which keeps the auditor's per-link
        packet-conservation balance intact); surviving packets accumulate
        extra propagation delay (jitter) and may be corrupted in flight.
        """
        extra_delay = 0.0
        for impairment in self._impairments:
            reason = impairment.in_flight_fate(packet)
            if reason is not None:
                self.stats.packets_chaos_dropped += 1
                self._m_chaos_drops.inc()
                self.sim.note_drop(packet.flow_id)
                self._trace.record(
                    self.sim.now, EV_LINK_LOSS, self.name,
                    packet=packet.describe(), uid=packet.uid,
                    chaos=impairment.name, reason=reason,
                )
                return
            extra_delay += impairment.extra_delay(packet)
            if not packet.corrupted and impairment.corrupts(packet):
                packet.corrupted = True
                self.stats.packets_corrupted += 1
                self._m_chaos_corrupt.inc()
                self._trace.record(
                    self.sim.now, EV_CHAOS_CORRUPT, self.name,
                    packet=packet.describe(), uid=packet.uid,
                    chaos=impairment.name,
                )
        self.sim.schedule(self.delay + extra_delay, self._deliver, packet)

    def _deliver(self, packet: Packet) -> None:
        self.stats.packets_delivered += 1
        self.stats.bytes_delivered += packet.size
        self._m_delivered_bytes.inc(packet.size)
        trace = self._trace
        if trace.lineage:
            # ``corrupted`` matters to the auditor: a corrupted ACK is
            # discarded at the endpoint, so its contents must not enter
            # the reconstructed sender-knowledge state.
            if packet.corrupted:
                trace.record(self.sim.now, EV_PKT_DELIVER, self.name,
                             dst=self.dst.name, corrupted=True,
                             **packet.lineage_detail())
            else:
                trace.record(self.sim.now, EV_PKT_DELIVER, self.name,
                             dst=self.dst.name, **packet.lineage_detail())
        self.dst.receive(packet)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Link {self.name} rate={self.rate:.0f}B/s delay={self.delay * 1e3:.1f}ms>"
