"""Unidirectional links.

A :class:`Link` models one direction of a wire: an egress queue at the
sending side, a serializer limited to ``rate`` bytes/second (one packet
at a time), a fixed propagation ``delay``, and an optional random loss
process applied in flight (used for wireless access profiles).

Beyond the built-in Bernoulli loss, a link carries an **impairment
pipeline** (see :mod:`repro.chaos`): attached impairments judge every
serialized packet (drop it, corrupt it, delay it) and may clone offered
packets (duplicating middleboxes).  The pipeline is empty by default
and every hook sits behind a single ``if self._impairments`` check, so
chaos-off runs pay one falsy test per packet.

Full-duplex connectivity is built from two links; see
:meth:`repro.net.topology.Topology.connect`.

Batched packet-train datapath
-----------------------------
The unbatched execution spends two scheduler events per packet per hop
(``finish_transmission`` + ``deliver``), which BENCH_2 profiling shows
is ~96 % of all events on the figure macros.  When nothing needs
per-packet control, the link instead *plans* the whole back-to-back run
at serialization start: per-packet start/finish/delivery timestamps are
computed analytically (the same chained float additions the per-packet
events would have performed, so timestamps are bit-identical), one
delivery event is pushed per surviving packet, and a single lazily
scheduled restart continues the train when more packets queue behind a
busy serializer.

Two mechanisms compose:

* **Train planning** replaces every ``finish_transmission`` event with
  arithmetic.  Queue-occupancy decisions stay byte-identical through
  ``DropTailQueue.pending_bytes``: planned packets whose serialization
  start is still in the future are re-counted as queued, which is
  exactly when the unbatched execution would still hold them.
* **Cut-through chaining** extends a plan across downstream links that
  a topology builder marked ``cut_through`` (links with a single
  structural feeder, e.g. the access-network last-mile edges).  When
  such a link is provably idle at the packet's arrival instant, its
  serialization is planned in the same pass and no event fires at the
  intermediate router at all.  A real admission racing an outstanding
  plan would break FIFO order, so marked links keep a high-water mark
  of planned arrivals and refuse (loudly) if an admission arrives
  before it — unreachable when the mark is applied to genuinely
  sole-feeder links.

The **fallback predicate** is a cached boolean (``self._fast``),
recomputed whenever observability state changes: any of tracing
(lineage/provenance), an attached impairment, a non-drop-tail queue
discipline, or a sampling monitor on the link or its queue forces the
per-packet path, which remains byte-for-byte the pre-batching code.
Bernoulli loss *is* batchable: draws come from the link's private RNG
stream in serialization order either way.

``events_absorbed`` accounting keeps benchmarks honest: every event the
plan eliminated increments :attr:`Simulator.events_absorbed` (and the
``scheduler.events_absorbed`` counter), every extra restart event
decrements it, so ``events_run + events_absorbed`` equals the event
count of the equivalent unbatched run exactly.
"""

from __future__ import annotations

from collections import deque
from contextlib import contextmanager
from typing import Iterator, List, Optional

from repro import fastpath
from repro.errors import ConfigurationError, SimulationError, TopologyError
from repro.net.packet import Packet
from repro.net.queue import DropTailQueue
from repro.telemetry.schema import (
    EV_CHAOS_CLONE, EV_CHAOS_CORRUPT, EV_LINK_LOSS, EV_PKT_DELIVER,
    EV_PKT_ENQUEUE, EV_PKT_TX, EV_QUEUE_DROP,
)

__all__ = ["Link", "LinkStats", "batching_enabled", "set_batching",
           "batching_disabled"]

#: Process-wide batching master switch.  The equivalence suite flips it
#: off to produce the per-packet reference execution; links cache it at
#: predicate-refresh time, so flip it before building a topology.
_BATCHING = True


def batching_enabled() -> bool:
    """True when links may use the batched packet-train datapath."""
    return _BATCHING


def set_batching(on: bool) -> None:
    """Globally enable/disable train batching (affects links built or
    refreshed afterwards)."""
    global _BATCHING
    _BATCHING = bool(on)


@contextmanager
def batching_disabled() -> Iterator[None]:
    """Run the per-packet reference datapath inside the context (the
    fingerprint-equivalence suite's unbatched arm)."""
    global _BATCHING
    previous = _BATCHING
    _BATCHING = False
    try:
        yield
    finally:
        _BATCHING = previous


class LinkStats:
    """Delivery counters for one link direction."""

    __slots__ = ("packets_sent", "bytes_sent", "packets_delivered",
                 "bytes_delivered", "packets_lost_inflight",
                 "packets_chaos_dropped", "packets_corrupted")

    def __init__(self) -> None:
        self.packets_sent = 0
        self.bytes_sent = 0
        self.packets_delivered = 0
        self.bytes_delivered = 0
        self.packets_lost_inflight = 0
        #: In-flight losses decided by an attached impairment (subset of
        #: the chaos pipeline; disjoint from ``packets_lost_inflight``,
        #: which counts the built-in Bernoulli process).
        self.packets_chaos_dropped = 0
        #: Packets delivered with the ``corrupted`` flag set.
        self.packets_corrupted = 0


class Link:
    """One direction of a point-to-point link.

    Parameters
    ----------
    sim:
        The simulator this link schedules on.
    name:
        Diagnostic name, e.g. ``"r1->r2"``.
    dst:
        The receiving node (anything with a ``receive(packet)`` method).
    rate:
        Serialization rate in **bytes per second**.
    delay:
        One-way propagation delay in seconds.
    queue:
        Egress queue; defaults to a large drop-tail queue (effectively
        unbounded for edge links).
    loss_rate:
        Probability each serialized packet is lost in flight.
    """

    #: Happens-before partition (``Simulator._event_entity``): the
    #: propagation pipe is independent of the serializer.  ``_deliver``
    #: touches only the delivery counters and ``dst.receive``; it never
    #: reads the egress queue, ``_busy``, or the loss RNG, so a delivery
    #: commutes with a same-instant ``_finish_transmission`` of a later
    #: packet and must not share an entity with the serializer side.
    HB_PARTITIONS = {"_deliver": "pipe"}

    def __init__(
        self,
        sim,
        name: str,
        dst,
        rate: float,
        delay: float,
        queue: Optional[DropTailQueue] = None,
        loss_rate: float = 0.0,
    ) -> None:
        if rate <= 0:
            raise ConfigurationError(f"link {name!r}: rate must be positive")
        if delay < 0:
            raise ConfigurationError(f"link {name!r}: delay must be non-negative")
        if not 0.0 <= loss_rate < 1.0:
            raise ConfigurationError(f"link {name!r}: loss_rate must be in [0,1)")
        self.sim = sim
        self.name = name
        self.dst = dst
        self.rate = rate
        self.delay = delay
        self._queue = queue if queue is not None else DropTailQueue(1 << 30)
        self.loss_rate = loss_rate
        self._loss_rng = sim.streams.get(f"link-loss:{name}") if loss_rate else None
        self._busy = False
        self._impairments: List = []
        self.stats = LinkStats()
        # --- batched-datapath state -----------------------------------
        #: Absolute time the serializer frees under the batched plan.
        self._busy_until = 0.0
        #: True while a train-restart event is pending at _busy_until.
        self._restart_pending = False
        #: ``(start_time, size, dq_push)`` of train-planned packets still
        #: logically occupying the queue — mirrored into
        #: ``queue.pending_bytes``.  ``dq_push`` is the push time of the
        #: unbatched dequeue event (the previous packet's serialization
        #: start; the planning event's own ``lpush`` for the train head),
        #: used by :meth:`_prune_pending` to resolve same-instant
        #: dequeue-vs-observer ties exactly as the per-packet run would.
        self._pending = deque()
        #: Serialization start of the last train-planned packet — the
        #: push time of the unbatched ``_finish_transmission`` event that
        #: would start the next run, back-dated onto restart events.
        self._last_start = 0.0
        #: Marked by topology builders asserting this link has a single
        #: structural feeder, enabling cut-through planning into it.
        self.cut_through = False
        #: Real admissions planned analytically but not yet delivered
        #: toward this link (racing-admission bookkeeping for cut-through
        #: eligibility).
        self._inbound_pending = 0
        #: High-water mark of cut-through arrival times planned into this
        #: link; a real admission before it would break FIFO order.
        self._cut_last_arrival = 0.0
        #: True once a sampling monitor reads this link's counters
        #: mid-run (exact sample timing needs per-packet events).
        self.monitored = False
        self._fast = False
        self._queue._owner = self
        # Cached recorder (rebound by the simulator when sim.trace is
        # reassigned): the per-packet lineage guard below is a single
        # attribute check when tracing is off.
        self._trace = sim.trace
        sim.watch_trace(self._rebind_trace)
        # Aggregate (all-links) telemetry; instruments resolve to no-ops
        # when the registry is disabled.
        metrics = sim.metrics
        self._m_tx_packets = metrics.counter("link.tx_packets")
        self._m_tx_bytes = metrics.counter("link.tx_bytes")
        self._m_delivered_bytes = metrics.counter("link.delivered_bytes")
        self._m_inflight_loss = metrics.counter("link.inflight_loss")
        self._m_queue_drops = metrics.counter("queue.drops")
        self._m_queue_drop_bytes = metrics.counter("queue.drop_bytes")
        self._m_chaos_drops = metrics.counter("chaos.drops")
        self._m_chaos_corrupt = metrics.counter("chaos.corrupted")
        self._m_absorbed = metrics.counter("scheduler.events_absorbed")
        if fastpath.enabled():
            # Zero-overhead build: bind the hook-free delivery variant
            # (no lineage-trace guard, no telemetry instrument call) for
            # the lifetime of this link.  The CLI refuses --fast together
            # with every flag that would need those hooks.
            self._deliver = self._deliver_nohook
        self.refresh_fast_path()

    # ------------------------------------------------------------------

    def _rebind_trace(self, recorder) -> None:
        self._trace = recorder
        self.refresh_fast_path()

    def refresh_fast_path(self) -> None:
        """Re-evaluate the cached batched-datapath predicate.

        Called whenever observability state changes (trace rebind,
        impairment attach/detach, monitor attachment).  Anything needing
        per-packet control — lineage/provenance tracing, chaos
        impairments, an AQM queue discipline, or a sampling monitor on
        the link or its queue — forces the per-packet reference path.

        A tie-break permutation salt also forces it: the perturbation
        harness scrambles same-instant order by per-event identity
        (``seq``), and a train plan absorbs events — changing the very
        identities the salt permutes — so a salted run must execute the
        per-packet reference schedule for batched-on/off runs to stay
        byte-identical.
        """
        self._fast = (
            _BATCHING
            and self.sim.tiebreak_salt is None
            and not self._trace.enabled
            and not self._impairments
            and not self.monitored
            and type(self.queue) is DropTailQueue
            and not self.queue.monitored
        )
        # Bind the admission path directly as this link's ``send``: one
        # call layer less per offered packet on the hottest edges.  The
        # class-level send (restored when the predicate flips off) is
        # the one that walks the impairment clone pipeline — impairments
        # force the predicate off, so the binding never skips it.
        if self._fast:
            self.send = self._admit_fast
        else:
            self.__dict__.pop("send", None)

    def mark_monitored(self) -> None:
        """Record that a sampler reads this link's counters mid-run
        (disables the batched fast path so sample timing stays exact)."""
        self.monitored = True
        self.refresh_fast_path()

    @property
    def queue(self) -> DropTailQueue:
        """The egress queue discipline."""
        return self._queue

    @queue.setter
    def queue(self, queue: DropTailQueue) -> None:
        # Post-construction swaps (tests / sensitivity studies replacing
        # the discipline, e.g. with CoDel) must re-evaluate the cached
        # batching predicate, or a stale fast path would bypass the new
        # discipline's dequeue-time logic.
        self._queue = queue
        queue._owner = self
        self.refresh_fast_path()

    # ------------------------------------------------------------------

    @property
    def busy(self) -> bool:
        """True while a packet is being serialized."""
        return self._busy or self.sim.now < self._busy_until

    def set_loss(self, loss_rate: float) -> None:
        """Install (or change) this link's random in-flight loss rate."""
        if not 0.0 <= loss_rate < 1.0:
            raise ConfigurationError(f"link {self.name!r}: loss_rate must be in [0,1)")
        self.loss_rate = loss_rate
        self._loss_rng = (
            self.sim.streams.get(f"link-loss:{self.name}") if loss_rate else None
        )

    # ------------------------------------------------------------------
    # Impairment pipeline (see repro.chaos)
    # ------------------------------------------------------------------

    @property
    def impairments(self) -> List:
        """Attached chaos impairments, in judging order (read-only view)."""
        return list(self._impairments)

    def attach_impairment(self, impairment) -> None:
        """Install ``impairment`` on this link (bound, then appended)."""
        impairment.bind(self)
        self._impairments.append(impairment)
        self.refresh_fast_path()

    def detach_impairment(self, impairment) -> None:
        """Remove one attached impairment (unbinding where supported)."""
        if impairment in self._impairments:
            self._impairments.remove(impairment)
            unbind = getattr(impairment, "unbind", None)
            if unbind is not None:
                unbind()
            self.refresh_fast_path()

    def detach_impairments(self) -> None:
        """Remove every impairment (unbinding timers where supported)."""
        for impairment in self._impairments:
            unbind = getattr(impairment, "unbind", None)
            if unbind is not None:
                unbind()
        self._impairments.clear()
        self.refresh_fast_path()

    # ------------------------------------------------------------------

    def transmission_time(self, packet: Packet) -> float:
        """Seconds needed to serialize ``packet`` at this link's rate."""
        return packet.size / self.rate

    def send(self, packet: Packet) -> None:
        """Offer ``packet`` to this link (queue, then serialize in order).

        Attached impairments may clone the offered packet (in-network
        duplication); clones are admitted directly so a clone is never
        itself re-judged into further clones.
        """
        if self._fast:
            self._admit_fast(packet)
            return
        if self._impairments:
            trace = self._trace
            for impairment in self._impairments:
                for clone in impairment.clones(packet):
                    if trace.lineage:
                        # The causal edge the audit layer needs: a clone
                        # carries the original's headers, so when it is
                        # the copy that survives, the sender learns the
                        # same contents the original would have taught.
                        trace.record(self.sim.now, EV_CHAOS_CLONE,
                                     self.name, clone_of=packet.uid,
                                     chaos=impairment.name,
                                     **clone.lineage_detail())
                    self._admit(clone)
        self._admit(packet)

    def _admit(self, packet: Packet) -> None:
        if not self.queue.enqueue(packet):
            self.sim.note_drop(packet.flow_id)
            self._m_queue_drops.inc()
            self._m_queue_drop_bytes.inc(packet.size)
            self._trace.record(
                self.sim.now, EV_QUEUE_DROP, self.name,
                packet=packet.describe(), uid=packet.uid,
            )
            return
        trace = self._trace
        if trace.lineage:
            trace.record(self.sim.now, EV_PKT_ENQUEUE, self.name,
                         **packet.lineage_detail())
        if not self._busy:
            self._start_transmission()

    # ------------------------------------------------------------------
    # Batched packet-train datapath (see module docstring)
    # ------------------------------------------------------------------

    def _prune_pending(self, now: float, lpush: float) -> None:
        """Release pending-bytes compensation for planned packets the
        unbatched execution would have dequeued by this point.

        A planned packet leaves the unbatched queue inside the event
        that starts its serialization, pushed at the *previous* packet's
        start (stored per entry as ``dq_push``).  An observer at the
        same instant sees the dequeue iff that event executes first —
        i.e. iff its push time is at most the observer's own logical
        push time (``lpush``); entries whose start has strictly passed
        are always released.  Ties in push time release (dequeue-first),
        the one approximation in the emulation — reachable only when
        two pushes coincide to the exact float instant.
        """
        pending = self._pending
        queue = self.queue
        released = queue.pending_bytes
        while pending:
            start, size, dq_push = pending[0]
            if start > now or (start == now and dq_push > lpush):
                break
            pending.popleft()
            released -= size
        queue.pending_bytes = released

    def _admit_fast(self, packet: Packet) -> None:
        sim = self.sim
        now = sim._now
        if now < self._cut_last_arrival:
            raise SimulationError(
                f"link {self.name!r}: admission at t={now:.9f} races a "
                f"cut-through plan arriving at t={self._cut_last_arrival:.9f}; "
                f"this link is marked cut_through but has more than one "
                f"feeder — remove the mark in the topology builder"
            )
        if self._pending:
            self._prune_pending(now, sim.exec_lpush)
        queue = self._queue
        if (not queue._packets and not self._restart_pending
                and now >= self._busy_until):
            # Idle admission — the overwhelmingly common case on edge
            # links — plans the packet as a train of one without the
            # enqueue/drain round-trip.  The queue counters below are
            # exactly what enqueue-then-drain would have recorded.
            size = packet.size
            occupancy = queue.pending_bytes + size
            qstats = queue.stats
            if occupancy > queue.capacity_bytes:
                qstats.dropped += 1
                qstats.bytes_dropped += size
                sim.note_drop(packet.flow_id)
                self._m_queue_drops.inc()
                self._m_queue_drop_bytes.inc(size)
                self._trace.record(
                    now, EV_QUEUE_DROP, self.name,
                    packet=packet.describe(), uid=packet.uid,
                )
                return
            qstats.enqueued += 1
            qstats.bytes_enqueued += size
            if occupancy > qstats.peak_bytes:
                qstats.peak_bytes = occupancy
            qstats.dequeued += 1
            # Inline train-of-one plan: the same arithmetic and the same
            # counter/RNG order as _start_train, minus its loop setup.
            finish = now + size / self.rate
            self._pending.append((now, size, sim.exec_lpush))
            queue.pending_bytes += size
            stats = self.stats
            stats.packets_sent += 1
            stats.bytes_sent += size
            self._m_tx_packets.inc()
            self._m_tx_bytes.inc(size)
            self._busy_until = finish
            self._last_start = now
            absorbed = 1  # the finish_transmission event this replaces
            loss_rng = self._loss_rng
            if loss_rng is not None and loss_rng.random() < self.loss_rate:
                stats.packets_lost_inflight += 1
                self._m_inflight_loss.inc()
                sim.note_drop(packet.flow_id)
            else:
                absorbed += self._plan_delivery(packet, size,
                                                finish + self.delay, finish)
            sim.events_absorbed += absorbed
            self._m_absorbed.inc(absorbed)
            return
        if not queue.enqueue(packet):
            sim.note_drop(packet.flow_id)
            self._m_queue_drops.inc()
            self._m_queue_drop_bytes.inc(packet.size)
            self._trace.record(
                now, EV_QUEUE_DROP, self.name,
                packet=packet.describe(), uid=packet.uid,
            )
            return
        if self._restart_pending:
            return
        if now >= self._busy_until:
            self._start_train()
        else:
            # Lazy continuation: one event at the instant the unbatched
            # execution's finish_transmission would have started this
            # packet.  It is an *extra* event the unbatched run does not
            # fire, so it counts against the absorbed total.
            self._restart_pending = True
            sim.events_absorbed -= 1
            self._m_absorbed.inc(-1)
            # Back-date to the instant the unbatched finish(last) event
            # was pushed (the last planned packet's start), so same-
            # instant races against queued arrivals order identically.
            sim.schedule_fast(self._busy_until, self._train_restart,
                              lpush=self._last_start)

    def _train_restart(self) -> None:
        self._restart_pending = False
        sim = self.sim
        self._prune_pending(sim._now, sim.exec_lpush)
        if self.queue._packets:
            self._start_train()

    def _start_train(self, packets=None) -> None:
        """Plan the whole queued run analytically (serializer is idle).

        Timestamps reproduce the unbatched execution's float arithmetic
        exactly: ``start_0 = now``, ``finish_i = start_i + size_i/rate``,
        ``start_{i+1} = finish_i``, ``delivery_i = finish_i + delay`` —
        the same chained additions the per-packet events perform.

        ``packets`` short-circuits the queue drain for the idle-admission
        path in :meth:`_admit_fast`, which has already performed the
        enqueue-equivalent byte accounting for its single packet.
        """
        sim = self.sim
        now = sim._now
        queue = self._queue
        rate = self.rate
        delay = self.delay
        loss_rng = self._loss_rng
        loss_rate = self.loss_rate
        stats = self.stats
        pending = self._pending
        pend_bytes = queue.pending_bytes
        if packets is None:
            packets = queue.drain()
        count = 0
        sent_bytes = 0
        absorbed = 0
        t = now
        # Push time of the unbatched event that dequeues the *next*
        # packet: the planning event itself for the train head, then
        # each packet's serialization start for its successor.
        dq_push = sim.exec_lpush
        for p in packets:
            size = p.size
            finish = t + size / rate
            # Every planned packet (head included) logically occupies
            # the queue until its dequeue event would have run; same-
            # instant observers resolve against dq_push in the prune.
            pending.append((t, size, dq_push))
            pend_bytes += size
            dq_push = t
            count += 1
            sent_bytes += size
            # The finish_transmission event this plan replaces.
            absorbed += 1
            if loss_rng is not None and loss_rng.random() < loss_rate:
                stats.packets_lost_inflight += 1
                self._m_inflight_loss.inc()
                sim.note_drop(p.flow_id)
                t = finish
                continue
            absorbed += self._plan_delivery(p, size, finish + delay, finish)
            t = finish
        self._busy_until = t
        self._last_start = dq_push
        queue.pending_bytes = pend_bytes
        stats.packets_sent += count
        stats.bytes_sent += sent_bytes
        self._m_tx_packets.inc(count)
        self._m_tx_bytes.inc(sent_bytes)
        sim.events_absorbed += absorbed
        self._m_absorbed.inc(absorbed)

    def _plan_delivery(self, p: Packet, size: int, arrival: float,
                       push_t: float) -> int:
        """Schedule the delivery of one train-planned packet — possibly
        cutting through marked downstream links — and return the number
        of downstream events the chain absorbed (two per virtual hop).

        ``arrival`` is the packet's arrival at the current hop's
        destination; ``push_t`` is where the unbatched execution pushes
        the delivery event (this link's serialization finish, updated per
        virtual hop).
        """
        sim = self.sim
        schedule_fast = sim.schedule_fast
        absorbed = 0
        cur = self
        hop_dst = self.dst
        while True:
            if not getattr(hop_dst, "FORWARDS", False):
                schedule_fast(arrival, cur._deliver, p, lpush=push_t)
                break
            nxt = hop_dst.routes.get(p.dst)
            if nxt is None:
                schedule_fast(arrival, cur._deliver, p, lpush=push_t)
                break
            if not (nxt.cut_through and nxt._fast):
                # Delivery into a router whose next hop cannot be
                # planned (e.g. the shared bottleneck): fuse the
                # forwarding dispatch into the delivery callback.
                schedule_fast(arrival, cur._deliver_forward, p, nxt,
                              lpush=push_t)
                break
            queue2 = nxt.queue
            if (nxt._inbound_pending or queue2._packets
                    or nxt._restart_pending
                    or arrival < nxt._busy_until
                    or size > queue2.capacity_bytes):
                # Not provably idle at the arrival instant: deliver
                # normally, but account the in-flight admission so
                # nxt's own cut decisions stay sound.
                nxt._inbound_pending += 1
                schedule_fast(arrival, cur._deliver_tracked, p, nxt,
                              lpush=push_t)
                break
            # Virtual hop: the unbatched run's deliver -> forward ->
            # enqueue -> start -> finish collapses into arithmetic.
            p.hops += 1
            if p.hops > 64:
                raise TopologyError(
                    f"routing loop detected for {p.describe()}")
            cur.stats.packets_delivered += 1
            cur.stats.bytes_delivered += size
            cur._m_delivered_bytes.inc(size)
            qstats = queue2.stats
            qstats.enqueued += 1
            qstats.bytes_enqueued += size
            qstats.dequeued += 1
            if size > qstats.peak_bytes:
                qstats.peak_bytes = size
            nxt._cut_last_arrival = arrival
            finish2 = arrival + size / nxt.rate
            nxt._busy_until = finish2
            nxt._last_start = arrival
            push_t = finish2
            nstats = nxt.stats
            nstats.packets_sent += 1
            nstats.bytes_sent += size
            nxt._m_tx_packets.inc()
            nxt._m_tx_bytes.inc(size)
            # cur's deliver event + nxt's finish event, both absorbed.
            absorbed += 2
            rng2 = nxt._loss_rng
            if rng2 is not None and rng2.random() < nxt.loss_rate:
                nstats.packets_lost_inflight += 1
                nxt._m_inflight_loss.inc()
                sim.note_drop(p.flow_id)
                break
            arrival = finish2 + nxt.delay
            cur = nxt
            hop_dst = nxt.dst
        return absorbed

    def _deliver_forward(self, packet: Packet, next_link: "Link") -> None:
        """Delivery into a forwarding node, fused with the forward step.

        Behaviourally identical to ``_deliver`` followed by
        ``Router.receive`` -> ``forward``: the routing-table lookup was
        done at plan time (routes are static after topology build), and
        ``next_link.send`` re-dispatches at fire time so a link whose
        fast-path predicate flipped since planning still takes its
        current datapath.  Scheduled only from train plans, so lineage
        tracing is off at plan time; the guard stays for a recorder
        enabled mid-flight.
        """
        size = packet.size
        stats = self.stats
        stats.packets_delivered += 1
        stats.bytes_delivered += size
        self._m_delivered_bytes.inc(size)
        trace = self._trace
        if trace.lineage:
            if packet.corrupted:
                trace.record(self.sim.now, EV_PKT_DELIVER, self.name,
                             dst=self.dst.name, corrupted=True,
                             **packet.lineage_detail())
            else:
                trace.record(self.sim.now, EV_PKT_DELIVER, self.name,
                             dst=self.dst.name, **packet.lineage_detail())
        packet.hops += 1
        if packet.hops > 64:
            raise TopologyError(f"routing loop detected for {packet.describe()}")
        next_link.send(packet)

    def _deliver_tracked(self, packet: Packet, next_link: "Link") -> None:
        """Delivery into a router whose marked next hop could not be cut
        through: release the racing-admission reservation, then deliver
        (fused with the forward step, exactly like ``_deliver_forward``)."""
        next_link._inbound_pending -= 1
        self._deliver_forward(packet, next_link)

    # ------------------------------------------------------------------

    def _start_transmission(self) -> None:
        packet = self.queue.dequeue()
        if packet is None:
            self._busy = False
            return
        self._busy = True
        self.stats.packets_sent += 1
        self.stats.bytes_sent += packet.size
        self._m_tx_packets.inc()
        self._m_tx_bytes.inc(packet.size)
        transmission_time = self.transmission_time(packet)
        trace = self._trace
        if trace.lineage:
            # ``ser`` (schema v4): span consumers need where serialization
            # ends inside the tx -> deliver window, and the rate may have
            # changed by delivery time (chaos bandwidth modulation).
            trace.record(self.sim.now, EV_PKT_TX, self.name,
                         ser=transmission_time, **packet.lineage_detail())
        self.sim.schedule(transmission_time, self._finish_transmission, packet)

    def _finish_transmission(self, packet: Packet) -> None:
        if self._loss_rng is not None and self._loss_rng.random() < self.loss_rate:
            self.stats.packets_lost_inflight += 1
            self._m_inflight_loss.inc()
            self.sim.note_drop(packet.flow_id)
            self._trace.record(
                self.sim.now, EV_LINK_LOSS, self.name,
                packet=packet.describe(), uid=packet.uid,
            )
        elif self._impairments:
            self._finish_impaired(packet)
        else:
            self.sim.schedule(self.delay, self._deliver, packet)
        # Keep the pipe full: start the next packet immediately.
        self._busy = False
        if len(self.queue):
            self._start_transmission()

    def _finish_impaired(self, packet: Packet) -> None:
        """Serialization finished on an impaired link: run the pipeline.

        The first impairment to return a drop reason wins (the packet is
        recorded as an in-flight loss, which keeps the auditor's per-link
        packet-conservation balance intact); surviving packets accumulate
        extra propagation delay (jitter) and may be corrupted in flight.
        """
        extra_delay = 0.0
        for impairment in self._impairments:
            reason = impairment.in_flight_fate(packet)
            if reason is not None:
                self.stats.packets_chaos_dropped += 1
                self._m_chaos_drops.inc()
                self.sim.note_drop(packet.flow_id)
                self._trace.record(
                    self.sim.now, EV_LINK_LOSS, self.name,
                    packet=packet.describe(), uid=packet.uid,
                    chaos=impairment.name, reason=reason,
                )
                return
            extra_delay += impairment.extra_delay(packet)
            if not packet.corrupted and impairment.corrupts(packet):
                packet.corrupted = True
                self.stats.packets_corrupted += 1
                self._m_chaos_corrupt.inc()
                self._trace.record(
                    self.sim.now, EV_CHAOS_CORRUPT, self.name,
                    packet=packet.describe(), uid=packet.uid,
                    chaos=impairment.name,
                )
        self.sim.schedule(self.delay + extra_delay, self._deliver, packet)

    def _deliver(self, packet: Packet) -> None:
        self.stats.packets_delivered += 1
        self.stats.bytes_delivered += packet.size
        self._m_delivered_bytes.inc(packet.size)
        trace = self._trace
        if trace.lineage:
            # ``corrupted`` matters to the auditor: a corrupted ACK is
            # discarded at the endpoint, so its contents must not enter
            # the reconstructed sender-knowledge state.
            if packet.corrupted:
                trace.record(self.sim.now, EV_PKT_DELIVER, self.name,
                             dst=self.dst.name, corrupted=True,
                             **packet.lineage_detail())
            else:
                trace.record(self.sim.now, EV_PKT_DELIVER, self.name,
                             dst=self.dst.name, **packet.lineage_detail())
        self.dst.receive(packet)

    def _deliver_nohook(self, packet: Packet) -> None:
        """:meth:`_deliver` for the zero-overhead build (fastpath): the
        lineage guard and the telemetry instrument — both no-ops in any
        configuration --fast accepts — are omitted rather than tested."""
        self.stats.packets_delivered += 1
        self.stats.bytes_delivered += packet.size
        self.dst.receive(packet)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Link {self.name} rate={self.rate:.0f}B/s delay={self.delay * 1e3:.1f}ms>"
