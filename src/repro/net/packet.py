"""Packets.

One packet class covers control (SYN / SYN-ACK / handshake ACK), data
segments and data ACKs.  Data is modelled at segment granularity: a flow
of ``n`` payload bytes becomes ``ceil(n / MSS)`` segments indexed
``0..n-1``; ACKs carry the cumulative next-expected segment index plus up
to three SACK ranges, mirroring the UDT-with-Selective-ACK transport the
paper built on.

:class:`Packet` is a hand-written ``__slots__`` class rather than a
dataclass: packet construction sits on the per-segment hot path (every
transmission, ACK and clone allocates one), and slots cut both the
instance footprint and the attribute-access cost.  A hand-written class
(not ``dataclass(slots=True)``) keeps Python 3.9 support.
"""

from __future__ import annotations

import itertools
from enum import Enum
from typing import Any, Dict, Tuple

from repro.units import HEADER_SIZE

__all__ = ["PacketType", "Packet", "SackRanges"]

#: Up to three SACK ranges per ACK, as in classic TCP SACK option space.
SackRanges = Tuple[Tuple[int, int], ...]

_packet_ids = itertools.count(1)


class PacketType(Enum):
    """Wire-level packet categories."""

    SYN = "syn"
    SYN_ACK = "syn_ack"
    HANDSHAKE_ACK = "handshake_ack"
    DATA = "data"
    ACK = "ack"
    PROBE = "probe"  # PCP probe-train packets


class Packet:
    """A simulated packet.

    Attributes
    ----------
    src, dst:
        Host names; routing is by ``dst``.
    flow_id:
        Demultiplexing key at the destination host.
    kind:
        See :class:`PacketType`.
    size:
        Total bytes on the wire (header included) — what links serialize
        and queues count.
    seq:
        Segment index for DATA/PROBE; -1 otherwise.
    ack:
        Cumulative ACK: the *next expected* segment index; -1 when absent.
    sack:
        Up to three ``(start, end)`` half-open ranges of segments received
        above the cumulative point.
    echo_time:
        Timestamp echoed back by the receiver, used for RTT sampling
        (Karn-safe: senders only stamp first transmissions).
    retransmit:
        True for any retransmission (normal or proactive).
    proactive:
        True for proactive retransmissions (Halfback ROPR, Proactive TCP
        duplicates) — excluded from the paper's "normal retransmission"
        counts.
    flow_bytes:
        Total flow payload bytes, carried on the SYN so the receiver
        knows when the flow is complete (the simulator's stand-in for an
        application-level content length).
    uid:
        Unique wire-level identity (fresh per clone), used by lineage
        tracing.
    hops:
        Hop count, incremented at each router (loop diagnostics).
    corrupted:
        True once a chaos impairment flipped bits in flight.  Endpoints
        must discard corrupted packets (a checksum failure on real
        hardware); the sender recovers through normal RTO/SACK machinery.
    """

    __slots__ = ("src", "dst", "flow_id", "kind", "size", "seq", "ack",
                 "sack", "echo_time", "retransmit", "proactive",
                 "flow_bytes", "uid", "hops", "corrupted")

    def __init__(
        self,
        src: str,
        dst: str,
        flow_id: int,
        kind: PacketType,
        size: int,
        seq: int = -1,
        ack: int = -1,
        sack: SackRanges = (),
        echo_time: float = -1.0,
        retransmit: bool = False,
        proactive: bool = False,
        flow_bytes: int = -1,
        uid: int = -1,
        hops: int = 0,
        corrupted: bool = False,
    ) -> None:
        if size < HEADER_SIZE:
            raise ValueError(
                f"packet size {size} smaller than header ({HEADER_SIZE})"
            )
        self.src = src
        self.dst = dst
        self.flow_id = flow_id
        self.kind = kind
        self.size = size
        self.seq = seq
        self.ack = ack
        self.sack = sack
        self.echo_time = echo_time
        self.retransmit = retransmit
        self.proactive = proactive
        self.flow_bytes = flow_bytes
        self.uid = uid if uid >= 0 else next(_packet_ids)
        self.hops = hops
        self.corrupted = corrupted

    @property
    def payload(self) -> int:
        """Payload bytes carried by this packet."""
        return self.size - HEADER_SIZE

    @property
    def is_data(self) -> bool:
        """True for payload-carrying segments (DATA or PROBE)."""
        return self.kind in (PacketType.DATA, PacketType.PROBE)

    @property
    def is_control(self) -> bool:
        """True for handshake packets and ACKs."""
        return not self.is_data

    def lineage_detail(self) -> Dict[str, Any]:
        """Detail payload shared by the ``pkt.*`` lineage hop events."""
        return {"uid": self.uid, "flow": self.flow_id}

    def clone(self) -> "Packet":
        """A fresh-``uid`` copy of this packet.

        Used to model in-network duplication: the copy is a distinct
        wire-level object with its own lineage span, so per-link packet
        conservation still balances.
        """
        return Packet(
            self.src, self.dst, self.flow_id, self.kind, self.size,
            seq=self.seq, ack=self.ack, sack=self.sack,
            echo_time=self.echo_time, retransmit=self.retransmit,
            proactive=self.proactive, flow_bytes=self.flow_bytes,
            uid=next(_packet_ids), hops=self.hops,
            corrupted=self.corrupted,
        )

    def describe(self) -> str:
        """Short human-readable summary (used in traces and examples)."""
        parts = [f"{self.kind.value}", f"flow={self.flow_id}"]
        if self.seq >= 0:
            parts.append(f"seq={self.seq}")
        if self.ack >= 0:
            parts.append(f"ack={self.ack}")
        if self.retransmit:
            parts.append("proactive-rtx" if self.proactive else "rtx")
        if self.corrupted:
            parts.append("corrupt")
        return " ".join(parts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Packet uid={self.uid} {self.describe()} size={self.size}>"
