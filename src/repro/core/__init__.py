"""The paper's primary contribution: Halfback's mechanisms.

These modules are pure policy — the Pacing-phase planner, the ROPR
state machine, and the fallback bandwidth estimator — wired into the
transport framework by :mod:`repro.protocols.halfback`.
"""

from repro.core.bandwidth import AckRateEstimator
from repro.core.config import (
    HalfbackConfig,
    RATE_ACK_CLOCK,
    RATE_LINE,
    ROPR_FORWARD,
    ROPR_REVERSE,
)
from repro.core.pacing_phase import PacingPlan, plan_pacing
from repro.core.ropr import RoprScheduler
from repro.core.threshold import ThroughputCache, ThroughputObservation

__all__ = [
    "AckRateEstimator",
    "HalfbackConfig",
    "PacingPlan",
    "RATE_ACK_CLOCK",
    "RATE_LINE",
    "ROPR_FORWARD",
    "ROPR_REVERSE",
    "RoprScheduler",
    "ThroughputCache",
    "ThroughputObservation",
    "plan_pacing",
]
