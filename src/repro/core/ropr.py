"""Reverse-Ordered Proactive Retransmission (ROPR) — the paper's §3.2.

:class:`RoprScheduler` is a pure state machine deciding *which* segment
to proactively retransmit next; the Halfback sender decides *when*
(one per received ACK — the ACK clock) and performs the transmission.
Keeping it simulator-free makes the central invariants directly
testable:

* every segment is proposed at most once;
* ACKed segments are never proposed;
* reverse order proposes strictly decreasing indices, forward strictly
  increasing;
* the phase ends exactly when every so-far-unACKed segment has been
  proposed — in the typical no-loss case the ACK frontier (moving
  forward) meets the retransmission pointer (moving backward) in the
  middle, so only ~50 % of the flow is retransmitted: hence "Halfback".
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.core.config import ROPR_FORWARD, ROPR_REVERSE
from repro.errors import ConfigurationError

__all__ = ["RoprScheduler"]


class RoprScheduler:
    """Proposes proactive-retransmission candidates over ``[0, n)``.

    Parameters
    ----------
    n_segments:
        Number of segments covered by the aggressive start-up phase
        (the paced prefix of the flow, not necessarily the whole flow).
    order:
        :data:`~repro.core.config.ROPR_REVERSE` or
        :data:`~repro.core.config.ROPR_FORWARD`.
    """

    def __init__(self, n_segments: int, order: str = ROPR_REVERSE) -> None:
        if n_segments <= 0:
            raise ConfigurationError("ROPR needs at least one segment")
        if order not in (ROPR_REVERSE, ROPR_FORWARD):
            raise ConfigurationError(f"unknown ROPR order {order!r}")
        self.n_segments = n_segments
        self.order = order
        self._pointer = n_segments - 1 if order == ROPR_REVERSE else 0
        self._finished = False
        self.proposed: List[int] = []

    # ------------------------------------------------------------------

    @property
    def finished(self) -> bool:
        """True once every unACKed segment has been proposed."""
        return self._finished

    @property
    def proposed_count(self) -> int:
        """Number of candidates proposed so far."""
        return len(self.proposed)

    def next_candidate(self, is_acked: Callable[[int], bool]) -> Optional[int]:
        """Propose the next segment to proactively retransmit.

        ``is_acked`` reports the sender's current scoreboard view.  The
        scheduler skips (and permanently passes over) segments that are
        already ACKed; once the pointer crosses the end of its sweep the
        phase is finished and ``None`` is returned forever after.
        """
        if self._finished:
            return None
        if self.order == ROPR_REVERSE:
            while self._pointer >= 0 and is_acked(self._pointer):
                self._pointer -= 1
            if self._pointer < 0:
                self._finished = True
                return None
            candidate = self._pointer
            self._pointer -= 1
        else:
            while self._pointer < self.n_segments and is_acked(self._pointer):
                self._pointer += 1
            if self._pointer >= self.n_segments:
                self._finished = True
                return None
            candidate = self._pointer
            self._pointer += 1
        self.proposed.append(candidate)
        if self.order == ROPR_REVERSE and self._pointer < 0:
            self._finished = True
        if self.order == ROPR_FORWARD and self._pointer >= self.n_segments:
            self._finished = True
        return candidate

    def drain(self, is_acked: Callable[[int], bool]) -> List[int]:
        """Propose every remaining candidate at once (Halfback-Burst)."""
        batch: List[int] = []
        while True:
            candidate = self.next_candidate(is_acked)
            if candidate is None:
                break
            batch.append(candidate)
        return batch
