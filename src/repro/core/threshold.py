"""Adaptive Pacing Threshold (§3.1, second option).

"Another option ... is to set the threshold to the largest throughput
observed on recent connections, times the RTT derived from the
three-way handshake.  This setting efficiently avoids a too-aggressive
startup phase."

:class:`ThroughputCache` remembers, per destination, the largest
recently-observed delivery rate; a Halfback sender configured with
``HalfbackConfig(adaptive_threshold=True)`` caps its pacing budget at
``observed_rate * handshake_rtt`` (never above the static threshold).
Entries age out, falling back to the static behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.errors import ConfigurationError

__all__ = ["ThroughputObservation", "ThroughputCache"]


@dataclass(frozen=True)
class ThroughputObservation:
    """One remembered delivery-rate measurement."""

    rate: float        # bytes/second
    observed_at: float


class ThroughputCache:
    """Per-destination largest-recent-throughput memory."""

    def __init__(self, ttl: float = 600.0) -> None:
        if ttl <= 0:
            raise ConfigurationError("ttl must be positive")
        self.ttl = ttl
        self._entries: Dict[Tuple[str, str], ThroughputObservation] = {}

    def observe(self, src: str, dst: str, rate: float, now: float) -> None:
        """Record a delivery rate; keeps the max of fresh observations."""
        if rate <= 0:
            return
        current = self._entries.get((src, dst))
        if (current is not None and now - current.observed_at <= self.ttl
                and current.rate >= rate):
            return
        self._entries[(src, dst)] = ThroughputObservation(rate, now)

    def lookup(self, src: str, dst: str, now: float) -> Optional[float]:
        """Fresh remembered rate for the pair, or None."""
        entry = self._entries.get((src, dst))
        if entry is None or now - entry.observed_at > self.ttl:
            return None
        return entry.rate

    def threshold_for(self, src: str, dst: str, rtt: float, now: float,
                      ceiling: int) -> int:
        """The adaptive pacing budget: ``rate * rtt`` capped at
        ``ceiling`` (the static threshold); ``ceiling`` when unknown."""
        rate = self.lookup(src, dst, now)
        if rate is None or rtt <= 0:
            return ceiling
        return max(1, min(ceiling, int(rate * rtt)))

    def __len__(self) -> int:
        return len(self._entries)
