"""ACK-rate bandwidth estimation (paper §3.3).

During the ROPR phase the sender watches the rate at which bytes are
acknowledged; when a long flow falls back to TCP, its initial congestion
window is seeded with ``s * RTT`` where ``s`` is this estimate.  The
estimator is deliberately simple — total newly-ACKed bytes over the
observation span — because that is what an ACK clock measures: the
bottleneck's drain rate.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ConfigurationError

__all__ = ["AckRateEstimator"]


class AckRateEstimator:
    """Estimates delivered bandwidth from ACK arrivals.

    Feed :meth:`observe` with every ACK that acknowledged new data; read
    :meth:`rate` (bytes/second) once at least two observations span a
    non-zero interval.
    """

    def __init__(self) -> None:
        self._first_time: Optional[float] = None
        self._last_time: Optional[float] = None
        self._bytes = 0
        self._first_bytes = 0
        self.observations = 0

    def observe(self, time: float, newly_acked_bytes: int) -> None:
        """Record that ``newly_acked_bytes`` were acknowledged at ``time``."""
        if newly_acked_bytes < 0:
            raise ConfigurationError("acked bytes cannot be negative")
        if self._first_time is None:
            self._first_time = time
            # The first ACK's bytes were delivered before the window we
            # can measure, so they seed the count but not the rate span.
            self._first_bytes = newly_acked_bytes
        else:
            if time < self._first_time:
                raise ConfigurationError("time went backwards")
            self._bytes += newly_acked_bytes
        self._last_time = time
        self.observations += 1

    def rate(self) -> Optional[float]:
        """Estimated bandwidth in bytes/second, or None if unmeasurable."""
        if (self._first_time is None or self._last_time is None
                or self._last_time <= self._first_time):
            return None
        return self._bytes / (self._last_time - self._first_time)

    def window_for(self, rtt: float, segment_size: int,
                   fallback_segments: int = 2) -> int:
        """Congestion window (segments) worth ``rate * rtt`` — the §3.3
        fallback cwnd.  Returns ``fallback_segments`` when unmeasurable."""
        estimate = self.rate()
        if estimate is None or rtt <= 0:
            return fallback_segments
        return max(fallback_segments, int(estimate * rtt / segment_size))
