"""Halfback configuration.

Collects every knob §3 and §5 of the paper discuss: the Pacing
Threshold, the ROPR retransmission order and rate (the §5 ablations
flip these), the proactive-retransmissions-per-ACK ratio (the "one for
each ACK" default, with the paper's suggested future extension of e.g.
two per three ACKs), and the §4.2.4 refinement of bursting an initial
window before pacing.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.units import PACING_THRESHOLD

__all__ = ["HalfbackConfig", "ROPR_REVERSE", "ROPR_FORWARD",
           "RATE_ACK_CLOCK", "RATE_LINE"]

#: Retransmit from the end of the flow toward the ACK frontier (Halfback).
ROPR_REVERSE = "reverse"
#: Retransmit from the start of the flow (the Halfback-Forward ablation).
ROPR_FORWARD = "forward"

#: One proactive retransmission per received ACK (Halfback).
RATE_ACK_CLOCK = "ack-clock"
#: Burst all proactive retransmissions immediately (Halfback-Burst).
RATE_LINE = "line-rate"


@dataclass
class HalfbackConfig:
    """Knobs for the Pacing and ROPR phases.

    Attributes
    ----------
    pacing_threshold:
        Maximum bytes transmitted aggressively (§3.1); beyond this the
        flow falls back to TCP.  Paper default: the flow-control window
        (141 KB).
    ropr_order:
        :data:`ROPR_REVERSE` (Halfback) or :data:`ROPR_FORWARD`
        (ablation).
    ropr_rate:
        :data:`RATE_ACK_CLOCK` (Halfback) or :data:`RATE_LINE`
        (Halfback-Burst ablation).
    retransmissions_per_ack:
        Proactive retransmissions issued per received ACK during ROPR.
        1.0 reproduces the paper; fractional values implement the
        "two retransmissions for every three ACKs" future-work idea
        (§5, *Additional bandwidth*).
    initial_burst_segments:
        Segments sent back-to-back *before* the pacing phase — the
        §4.2.4 refinement for very small flows (0 disables; 10 mimics
        TCP-10's first flight).
    adaptive_threshold:
        The §3.1 alternative: cap the pacing budget at the largest
        throughput recently observed toward this destination times the
        handshake RTT (requires a shared
        :class:`~repro.core.threshold.ThroughputCache` in the protocol
        context).
    """

    pacing_threshold: int = PACING_THRESHOLD
    ropr_order: str = ROPR_REVERSE
    ropr_rate: str = RATE_ACK_CLOCK
    retransmissions_per_ack: float = 1.0
    initial_burst_segments: int = 0
    adaptive_threshold: bool = False

    def __post_init__(self) -> None:
        if self.pacing_threshold <= 0:
            raise ConfigurationError("pacing_threshold must be positive")
        if self.ropr_order not in (ROPR_REVERSE, ROPR_FORWARD):
            raise ConfigurationError(f"unknown ropr_order {self.ropr_order!r}")
        if self.ropr_rate not in (RATE_ACK_CLOCK, RATE_LINE):
            raise ConfigurationError(f"unknown ropr_rate {self.ropr_rate!r}")
        if self.retransmissions_per_ack <= 0:
            raise ConfigurationError("retransmissions_per_ack must be positive")
        if self.initial_burst_segments < 0:
            raise ConfigurationError("initial_burst_segments must be >= 0")
