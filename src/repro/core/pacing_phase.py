"""The Pacing phase planner (paper §3.1).

Given a flow and the handshake RTT, decide how many segments to send
aggressively and at what rate: Halfback (and JumpStart, which shares
this start-up) paces ``min(flow size, flow-control window, Pacing
Threshold)`` bytes evenly across one RTT.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.transport.config import TransportConfig

__all__ = ["PacingPlan", "plan_pacing"]


@dataclass(frozen=True)
class PacingPlan:
    """The resolved pacing-phase parameters for one flow.

    Attributes
    ----------
    segments:
        Number of segments covered by the aggressive phase (the flow's
        prefix ``[0, segments)``).
    bytes:
        Wire bytes those segments occupy.
    rate:
        Pacing rate in bytes/second (``bytes / rtt``).
    covers_flow:
        True when the whole flow fits in the aggressive phase — the
        common short-flow case; False means the sender must fall back
        to TCP for the remainder (§3.3).
    """

    segments: int
    bytes: int
    rate: float
    covers_flow: bool

    @property
    def interval(self) -> float:
        """Mean spacing between paced segments, in seconds."""
        return (self.bytes / self.segments) / self.rate


def plan_pacing(
    flow_bytes: int,
    rtt: float,
    transport: TransportConfig,
    pacing_threshold: int,
) -> PacingPlan:
    """Resolve the pacing plan for a flow of ``flow_bytes`` payload bytes.

    The upper bound on aggressively-sent data is the minimum of the flow
    size, the flow-control window, and the Pacing Threshold (§3.1),
    rounded down to whole segments (at least one).
    """
    if flow_bytes <= 0:
        raise ConfigurationError("flow_bytes must be positive")
    if rtt <= 0:
        raise ConfigurationError("rtt must be positive")
    mss = transport.mss
    total_segments = -(-flow_bytes // mss)  # ceil division
    # The window and threshold bound *wire* bytes; the flow size bounds
    # payload.  Work in whole segments to avoid mixing the two units.
    cap_segments = min(transport.flow_control_window,
                       pacing_threshold) // transport.segment_size
    segments = min(total_segments, max(1, cap_segments))
    covers = segments == total_segments
    if covers:
        tail = flow_bytes - (total_segments - 1) * mss
        wire_bytes = (segments - 1) * transport.segment_size + transport.header_size + tail
    else:
        wire_bytes = segments * transport.segment_size
    rate = wire_bytes / rtt
    return PacingPlan(segments=segments, bytes=wire_bytes, rate=rate,
                      covers_flow=covers)
