"""Analytical models (the conclusion's "theoretical modeling" future
work): closed-form clean-path FCT for slow-start and pacing schemes."""

from repro.analysis.model import (
    PathModel,
    crossover_size,
    paced_model_fct,
    slow_start_rounds,
    tcp_model_fct,
)

__all__ = [
    "PathModel",
    "crossover_size",
    "paced_model_fct",
    "slow_start_rounds",
    "tcp_model_fct",
]
