"""Analytical flow-completion-time models.

The paper's conclusion lists "theoretical modeling and analysis of
Halfback" as future work; this module provides first-order closed-form
models of the schemes on a clean single-bottleneck path, used three
ways:

* sanity-checking the simulator (tests assert simulation ~= model on
  clean paths);
* explaining the Fig. 11 crossover (when does pacing's one-RTT spread
  beat slow start?);
* quick what-if exploration without running packets.

All models measure the paper's FCT: from SYN transmission until the
receiver holds every byte (handshake included), ignoring queueing and
loss — they are *clean-path, lightly-loaded* models.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.transport.config import TransportConfig
from repro.units import SEGMENT_SIZE

__all__ = ["PathModel", "slow_start_rounds", "tcp_model_fct",
           "paced_model_fct", "crossover_size"]


@dataclass(frozen=True)
class PathModel:
    """A clean single-bottleneck path."""

    rtt: float                 # seconds
    bottleneck_rate: float     # bytes/second

    def __post_init__(self) -> None:
        if self.rtt <= 0 or self.bottleneck_rate <= 0:
            raise ConfigurationError("rtt and rate must be positive")

    @property
    def bdp_segments(self) -> float:
        """Bandwidth-delay product in segments."""
        return self.bottleneck_rate * self.rtt / SEGMENT_SIZE


def slow_start_rounds(n_segments: int, initial_window: int) -> int:
    """Number of RTT rounds slow start needs to deliver ``n_segments``.

    Round k (0-based) carries ``initial_window * 2**k`` segments, so the
    cumulative delivery after r rounds is ``initial_window*(2**r - 1)``.
    """
    if n_segments <= 0:
        raise ConfigurationError("n_segments must be positive")
    if initial_window < 1:
        raise ConfigurationError("initial_window must be >= 1")
    rounds = 0
    delivered = 0
    window = initial_window
    while delivered < n_segments:
        delivered += window
        window *= 2
        rounds += 1
    return rounds


def tcp_model_fct(
    flow_bytes: int,
    path: PathModel,
    config: TransportConfig = None,
    initial_window: int = None,
) -> float:
    """Clean-path FCT of slow-start TCP (window below path BDP).

    1 RTT handshake, then 0.5 RTT for each round's data to reach the
    receiver plus 0.5 RTT for its ACKs to return, i.e. one RTT per
    round, minus the final half-RTT already counted in the last data
    delivery.  Only valid while windows stay below the BDP (true for
    short flows on the paper's paths).
    """
    if config is None:
        config = TransportConfig()
    if initial_window is None:
        initial_window = config.initial_cwnd
    n_segments = math.ceil(flow_bytes / config.mss)
    rounds = slow_start_rounds(n_segments, initial_window)
    # Segments carried by the final round (what the receiver still
    # waits on) must also drain through the bottleneck.
    delivered_before = initial_window * (2 ** (rounds - 1) - 1)
    final_round_segments = n_segments - delivered_before
    final_drain = final_round_segments * config.segment_size / path.bottleneck_rate
    # Handshake (1 RTT) + (rounds - 1) full RTTs + final half RTT +
    # the final burst's serialization at the bottleneck.
    return path.rtt * (1.0 + (rounds - 1) + 0.5) + final_drain


def paced_model_fct(
    flow_bytes: int,
    path: PathModel,
    config: TransportConfig = None,
) -> float:
    """Clean-path FCT of a one-RTT pacing scheme (JumpStart/Halfback).

    1 RTT handshake + the pacing spread (one RTT, but the last segment
    leaves at ``(n-1)/n`` of it) + half an RTT propagation, plus the
    extra serialization when the bottleneck is slower than the pacing
    rate.
    """
    if config is None:
        config = TransportConfig()
    n_segments = math.ceil(flow_bytes / config.mss)
    wire_bytes = flow_bytes + n_segments * config.header_size
    pacing_spread = path.rtt * (n_segments - 1) / max(n_segments, 1)
    drain_time = wire_bytes / path.bottleneck_rate
    # The receiver finishes when the later of "last paced send + 0.5 RTT"
    # and "first send + bottleneck drain + 0.5 RTT" elapses.
    transfer = max(pacing_spread, drain_time)
    return path.rtt * 1.0 + transfer + 0.5 * path.rtt


def crossover_size(
    path: PathModel,
    config: TransportConfig = None,
    initial_window: int = 10,
    max_bytes: int = 2_000_000,
) -> int:
    """Smallest flow size (bytes) where pacing beats an
    ``initial_window``-segment slow start — the Fig. 11 crossover.

    Returns ``max_bytes`` if pacing never wins below that bound.
    """
    if config is None:
        config = TransportConfig()
    step = config.mss
    size = step
    while size <= max_bytes:
        if (paced_model_fct(size, path, config)
                < tcp_model_fct(size, path, config, initial_window)):
            return size
        size += step
    return max_bytes
