"""Measurement and analysis helpers."""

from repro.metrics.collapse import (
    SweepPoint,
    collapse_factor_curve,
    feasible_capacity,
)
from repro.metrics.fct import FctCollector
from repro.metrics.stats import (
    SummaryStats,
    ccdf_points,
    cdf_points,
    mean,
    median,
    percentile,
    stddev,
    summarize,
)

__all__ = [
    "FctCollector",
    "SummaryStats",
    "SweepPoint",
    "ccdf_points",
    "cdf_points",
    "collapse_factor_curve",
    "feasible_capacity",
    "mean",
    "median",
    "percentile",
    "stddev",
    "summarize",
]
