"""Statistical helpers: percentiles, CDFs, summaries.

Pure functions over sequences of floats, used by every experiment to
produce the rows and series the paper reports.  No numpy dependency so
the core library stays stdlib-only (benchmarks may still use numpy).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

from repro.errors import ConfigurationError

__all__ = [
    "mean",
    "stddev",
    "percentile",
    "median",
    "cdf_points",
    "ccdf_points",
    "SummaryStats",
    "summarize",
]


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; raises on empty input."""
    if not values:
        raise ConfigurationError("mean of empty sequence")
    return sum(values) / len(values)


def stddev(values: Sequence[float]) -> float:
    """Population standard deviation (0.0 for a single value)."""
    if not values:
        raise ConfigurationError("stddev of empty sequence")
    if len(values) == 1:
        return 0.0
    mu = mean(values)
    return math.sqrt(sum((v - mu) ** 2 for v in values) / len(values))


def percentile(values: Sequence[float], pct: float) -> float:
    """The ``pct``-th percentile (0..100) with linear interpolation."""
    if not values:
        raise ConfigurationError("percentile of empty sequence")
    if not 0 <= pct <= 100:
        raise ConfigurationError(f"percentile {pct} outside [0, 100]")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = pct / 100 * (len(ordered) - 1)
    lower = int(math.floor(rank))
    upper = int(math.ceil(rank))
    if lower == upper:
        return ordered[lower]
    weight = rank - lower
    lo, hi = ordered[lower], ordered[upper]
    # Interpolate as lo + w*(hi-lo) and clamp: the two-product form can
    # land one ULP outside [lo, hi] (breaking percentile monotonicity).
    return min(max(lo + weight * (hi - lo), lo), hi)


def median(values: Sequence[float]) -> float:
    """The 50th percentile."""
    return percentile(values, 50)


def cdf_points(values: Iterable[float]) -> List[Tuple[float, float]]:
    """Empirical CDF as ``(value, percent <= value)`` pairs, ascending —
    the paper's "Percent of Trials" axes."""
    ordered = sorted(values)
    n = len(ordered)
    if n == 0:
        return []
    return [(v, 100.0 * (i + 1) / n) for i, v in enumerate(ordered)]


def ccdf_points(values: Iterable[float]) -> List[Tuple[float, float]]:
    """Complementary CDF as ``(value, percent > value)`` pairs."""
    ordered = sorted(values)
    n = len(ordered)
    if n == 0:
        return []
    return [(v, 100.0 * (n - i - 1) / n) for i, v in enumerate(ordered)]


@dataclass(frozen=True)
class SummaryStats:
    """Summary of one metric across trials."""

    n: int
    mean: float
    std: float
    minimum: float
    p25: float
    p50: float
    p75: float
    p90: float
    p99: float
    maximum: float

    def row(self) -> str:
        """One-line rendering for report tables."""
        return (f"n={self.n} mean={self.mean:.4g} p50={self.p50:.4g} "
                f"p90={self.p90:.4g} p99={self.p99:.4g} max={self.maximum:.4g}")


def summarize(values: Sequence[float]) -> SummaryStats:
    """Compute a :class:`SummaryStats` over ``values``."""
    if not values:
        raise ConfigurationError("summarize of empty sequence")
    return SummaryStats(
        n=len(values),
        mean=mean(values),
        std=stddev(values),
        minimum=min(values),
        p25=percentile(values, 25),
        p50=percentile(values, 50),
        p75=percentile(values, 75),
        p90=percentile(values, 90),
        p99=percentile(values, 99),
        maximum=max(values),
    )
