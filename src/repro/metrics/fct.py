"""Flow-completion-time collection over runs.

:class:`FctCollector` aggregates :class:`~repro.transport.flow.FlowRecord`
objects and answers the questions every figure asks: mean/percentile
FCT, completion rate, retransmission counts, with filtering by flow
kind and protocol.  Incomplete flows (those that never finished inside
the experiment horizon) are *censored*: they are excluded from FCT
statistics but reported via :meth:`completion_rate`, and optionally
assigned a penalty FCT for collapse detection.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional

from repro.errors import ConfigurationError
from repro.metrics.stats import SummaryStats, summarize
from repro.transport.flow import FlowRecord

__all__ = ["FctCollector"]


class FctCollector:
    """Aggregates flow records and computes FCT statistics."""

    def __init__(self, records: Optional[Iterable[FlowRecord]] = None) -> None:
        self.records: List[FlowRecord] = list(records) if records else []

    def add(self, record: FlowRecord) -> None:
        """Append one finished (or abandoned) flow record."""
        self.records.append(record)

    # ------------------------------------------------------------------
    # Filtering
    # ------------------------------------------------------------------

    def filtered(
        self,
        protocol: Optional[str] = None,
        kind: Optional[str] = None,
        predicate: Optional[Callable[[FlowRecord], bool]] = None,
    ) -> "FctCollector":
        """A new collector restricted to matching records."""
        selected = [
            r for r in self.records
            if (protocol is None or r.spec.protocol == protocol)
            and (kind is None or r.spec.kind == kind)
            and (predicate is None or predicate(r))
        ]
        return FctCollector(selected)

    def lossy(self) -> "FctCollector":
        """Only flows where packet loss happened — the paper's Fig. 8
        subset.  Uses the simulator's ground-truth drop counts when the
        runner recorded them (``record.extra["drops"]``), falling back to
        sender-observed loss signals."""
        def saw_loss(r: FlowRecord) -> bool:
            drops = r.extra.get("drops")
            if drops is not None:
                return drops > 0
            return r.normal_retransmissions > 0 or r.timeouts > 0

        return self.filtered(predicate=saw_loss)

    def lossless(self) -> "FctCollector":
        """Complement of :meth:`lossy`."""
        lossy_ids = {id(r) for r in self.lossy().records}
        return FctCollector([r for r in self.records if id(r) not in lossy_ids])

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------

    def fcts(self, penalty: Optional[float] = None) -> List[float]:
        """Completed flows' FCTs (seconds); incomplete flows contribute
        ``penalty`` when given, otherwise they are censored."""
        values: List[float] = []
        for record in self.records:
            fct = record.fct
            if fct is not None:
                values.append(fct)
            elif penalty is not None:
                values.append(penalty)
        return values

    def mean_fct(self, penalty: Optional[float] = None) -> float:
        """Mean FCT in seconds."""
        values = self.fcts(penalty=penalty)
        if not values:
            raise ConfigurationError("no completed flows to average")
        return sum(values) / len(values)

    def summary(self, penalty: Optional[float] = None) -> SummaryStats:
        """Full FCT summary statistics."""
        return summarize(self.fcts(penalty=penalty))

    def completion_rate(self) -> float:
        """Fraction of flows that completed inside the horizon."""
        if not self.records:
            return 0.0
        done = sum(1 for r in self.records if r.completed)
        return done / len(self.records)

    def rtt_counts(self) -> List[float]:
        """FCT normalized by handshake RTT per flow (Fig. 7)."""
        values = []
        for record in self.records:
            count = record.rtts_used()
            if count is not None:
                values.append(count)
        return values

    def normal_retransmissions(self) -> List[int]:
        """Per-flow normal retransmission counts (Figs. 5 and 10b)."""
        return [r.normal_retransmissions for r in self.records]

    def mean_normal_retransmissions(self) -> float:
        """Mean normal retransmissions per flow."""
        counts = self.normal_retransmissions()
        return sum(counts) / len(counts) if counts else 0.0

    def proactive_retransmissions(self) -> List[int]:
        """Per-flow proactive retransmission counts."""
        return [r.proactive_retransmissions for r in self.records]

    def loss_fraction(self) -> float:
        """Fraction of flows that saw any loss signal."""
        if not self.records:
            return 0.0
        return len(self.lossy().records) / len(self.records)

    def __len__(self) -> int:
        return len(self.records)
