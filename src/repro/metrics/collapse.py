"""Feasible-capacity (collapse-point) detection.

The paper defines *feasible network utilization* as "the maximum
network utilization achievable before the throughput collapses" and
reads it off utilization-sweep curves like Fig. 12: the point where a
scheme's mean FCT (or failure rate) spikes.

:func:`feasible_capacity` formalizes that: given (utilization, mean
FCT) points, find the highest utilization such that every point at or
below it stays within ``factor`` times the low-load baseline FCT and
meets a completion-rate floor.  This is intentionally a *conservative*
reading — the first violation caps the feasible region even if a later
point dips back down (noise above the collapse knee is not "feasible").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.errors import ConfigurationError

__all__ = ["SweepPoint", "feasible_capacity", "collapse_factor_curve"]


@dataclass(frozen=True)
class SweepPoint:
    """One utilization-sweep measurement for one scheme."""

    utilization: float          # offered load as a fraction of capacity
    mean_fct: float             # seconds (penalized for incompletions)
    completion_rate: float = 1.0


def feasible_capacity(
    points: Sequence[SweepPoint],
    factor: float = 3.0,
    min_completion: float = 0.95,
    baseline_fct: Optional[float] = None,
) -> float:
    """Highest sustainable utilization before collapse.

    Parameters
    ----------
    points:
        Sweep measurements; sorted internally by utilization.
    factor:
        Collapse threshold: mean FCT above ``factor * baseline`` marks
        the knee.
    min_completion:
        A completion rate below this also marks collapse (flows piling
        up unfinished is throughput collapse even if the finished ones
        look fast).
    baseline_fct:
        Reference FCT; defaults to the lowest-utilization point's mean
        (the scheme's own unloaded behaviour, so conservative schemes
        are not penalized for being slow everywhere).
    """
    if not points:
        raise ConfigurationError("feasible_capacity needs at least one point")
    if factor <= 1.0:
        raise ConfigurationError("collapse factor must exceed 1.0")
    ordered = sorted(points, key=lambda p: p.utilization)
    baseline = baseline_fct if baseline_fct is not None else ordered[0].mean_fct
    if baseline <= 0:
        raise ConfigurationError("baseline FCT must be positive")
    feasible = 0.0
    for point in ordered:
        if point.mean_fct > factor * baseline:
            break
        if point.completion_rate < min_completion:
            break
        feasible = point.utilization
    return feasible


def collapse_factor_curve(
    points: Sequence[SweepPoint],
    baseline_fct: Optional[float] = None,
) -> List[float]:
    """Each point's FCT as a multiple of the baseline (diagnostics)."""
    if not points:
        return []
    ordered = sorted(points, key=lambda p: p.utilization)
    baseline = baseline_fct if baseline_fct is not None else ordered[0].mean_fct
    if baseline <= 0:
        raise ConfigurationError("baseline FCT must be positive")
    return [p.mean_fct / baseline for p in ordered]
