"""Simulation events.

An :class:`Event` is a callback bound to a point in simulated time.  Events
are ordered by ``(time, priority, lpush, sequence)``: the sequence number
is a monotonically increasing tiebreaker so that two events scheduled for
the same instant run in the order they were scheduled (FIFO), which keeps
packet-level simulations deterministic.

``lpush`` is the *logical push time* — the simulated instant at which
the per-packet (unbatched) execution would have scheduled this event.
The simulator stamps it with ``now`` at scheduling time, which makes it
redundant with ``seq`` (both are monotone in push order) and leaves
ordinary schedules byte-identical to the historical ``(time, priority,
seq)`` order.  The batched link datapath (:mod:`repro.net.link`)
schedules delivery events *ahead of time* and back-dates ``lpush`` to
the analytic unbatched push instant, so same-timestamp collisions
between train-planned deliveries and ordinary events resolve exactly as
the per-packet execution would have resolved them.

Cancellation is *lazy*: cancelling marks the event dead and the scheduler
discards it when popped.  This keeps cancellation O(1), which matters for
retransmission timers that are rescheduled on every ACK.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Optional

__all__ = ["Event", "EventHandle"]

_sequence = itertools.count()


class Event:
    """A scheduled callback.

    Application code does not construct events directly; use
    :meth:`repro.sim.simulator.Simulator.schedule`.
    """

    __slots__ = ("time", "priority", "lpush", "seq", "callback", "args",
                 "cancelled", "parent")

    def __init__(
        self,
        time: float,
        callback: Callable[..., Any],
        args: tuple = (),
        priority: int = 0,
    ) -> None:
        self.time = time
        self.priority = priority
        #: Logical push time (see module docstring); the simulator stamps
        #: the scheduling instant, the batched datapath back-dates it.
        self.lpush = 0.0
        self.seq = next(_sequence)
        self.callback: Optional[Callable[..., Any]] = callback
        self.args = args
        self.cancelled = False
        #: Sequence number of the event whose callback scheduled this one
        #: (the happens-before *scheduling parent*).  Stamped by the
        #: simulator only while provenance instrumentation is on; None
        #: means "scheduled outside any event" (setup code) or
        #: provenance off.
        self.parent: Optional[int] = None

    def cancel(self) -> None:
        """Mark this event dead; the scheduler will skip it."""
        self.cancelled = True
        # Drop references so cancelled events do not pin objects alive while
        # they wait in the heap.
        self.callback = None
        self.args = ()

    def fire(self) -> None:
        """Run the callback (no-op if cancelled)."""
        if self.cancelled or self.callback is None:
            return
        self.callback(*self.args)

    # Ordering ------------------------------------------------------------

    def sort_key(self) -> tuple:
        return (self.time, self.priority, self.lpush, self.seq)

    def __lt__(self, other: "Event") -> bool:
        return self.sort_key() < other.sort_key()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        name = getattr(self.callback, "__qualname__", repr(self.callback))
        state = " cancelled" if self.cancelled else ""
        return f"<Event t={self.time:.6f} {name}{state}>"


class EventHandle:
    """A caller-facing handle to a scheduled event.

    Exposes only cancellation and liveness so callers cannot mutate the
    scheduler's internals.
    """

    __slots__ = ("_event",)

    def __init__(self, event: Event) -> None:
        self._event = event

    @property
    def time(self) -> float:
        """The simulated time at which the event fires."""
        return self._event.time

    @property
    def active(self) -> bool:
        """True while the event is scheduled and not cancelled."""
        return not self._event.cancelled

    def cancel(self) -> None:
        """Cancel the event; safe to call more than once."""
        self._event.cancel()
