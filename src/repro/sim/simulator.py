"""The discrete-event simulator.

:class:`Simulator` owns the clock and the event queue.  Components
(links, queues, transport endpoints) hold a reference to the simulator
and schedule callbacks on it; nothing in the library uses wall-clock
time, threads, or asyncio — a run is a deterministic function of the
initial configuration and the RNG seeds.

A restartable :class:`Timer` is provided for retransmission timers and
similar patterns where the same logical timer is re-armed many times.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from repro.errors import SimulationError, StallError
from repro.sim.event import Event, EventHandle
from repro.sim.scheduler import (EventScheduler, PermutedEventScheduler,
                                 current_tiebreak_salt)
from repro.sim.randomness import RandomStreams
from repro.sim.trace import TraceRecorder
from repro.telemetry.context import current_hub
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.schema import EV_SCHED_EXEC, EV_SIM_CRASH

__all__ = ["Simulator", "Timer", "DEFAULT_STALL_EVENT_LIMIT",
           "reset_tie_break_stats", "tie_break_stats"]

#: Default no-progress watchdog threshold: events allowed to fire at one
#: simulated instant before the run is declared stalled.  Real workloads
#: fire at most a few thousand same-instant events (a burst release),
#: so a million same-instant events can only be a zero-delay cycle.
DEFAULT_STALL_EVENT_LIMIT = 1_000_000


# ----------------------------------------------------------------------
# Process-wide tie-break exposure accounting
# ----------------------------------------------------------------------

#: Process-wide accumulator of same-timestamp event groups across every
#: simulator run since the last :func:`reset_tie_break_stats`.  CLIs
#: reset it at startup and surface the totals in the run summary and
#: ``run_manifest.json`` so order-sensitivity exposure is visible per
#: run.  With ``--jobs N`` the counters cover simulators driven in this
#: process only (worker processes keep their own).
_TIE_BREAK_STATS = {"groups": 0, "max_group": 0}


def reset_tie_break_stats() -> None:
    """Zero the process-wide tie-break counters (CLIs call this once)."""
    _TIE_BREAK_STATS["groups"] = 0
    _TIE_BREAK_STATS["max_group"] = 0


def tie_break_stats() -> Dict[str, int]:
    """Snapshot of the process-wide tie-break counters.

    ``groups`` counts same-timestamp event groups (two or more events
    fired at one simulated instant within one :meth:`Simulator.run`
    pass); ``max_group`` is the largest such group seen.  Every group is
    a point where the scheduler's FIFO tie-break chose an order — the
    exposure surface the happens-before analysis (:mod:`repro.hb`)
    audits for commutativity.
    """
    return dict(_TIE_BREAK_STATS)


class Simulator:
    """Deterministic discrete-event simulator.

    Parameters
    ----------
    seed:
        Master seed for all randomness drawn during the run (see
        :class:`~repro.sim.randomness.RandomStreams`).
    trace:
        Optional trace recorder; when omitted a disabled recorder is
        installed so components can call ``sim.trace.record(...)``
        unconditionally.
    metrics:
        Optional :class:`~repro.telemetry.metrics.MetricsRegistry`; when
        omitted a disabled registry is installed so components can
        resolve instruments unconditionally.
    profiler:
        Optional :class:`~repro.telemetry.profiling.SimProfiler` that
        receives per-event wall-clock timings and heap-depth readings.
    stall_event_limit:
        No-progress watchdog threshold: when more than this many events
        fire without the simulated clock advancing, :meth:`run` raises a
        diagnosable :class:`~repro.errors.StallError` carrying a dump of
        the next pending events instead of spinning forever.  ``None``
        disables the watchdog.

    When a telemetry session is active (see
    :func:`repro.telemetry.session`) any of the three left unspecified
    is picked up from the session's hub, which is how ``--telemetry``
    instruments experiments without changing their signatures.
    """

    def __init__(self, seed: int = 0, trace: Optional[TraceRecorder] = None,
                 metrics: Optional[MetricsRegistry] = None,
                 profiler=None,
                 stall_event_limit: Optional[int] = DEFAULT_STALL_EVENT_LIMIT,
                 ) -> None:
        hub = current_hub()
        if hub is not None:
            if trace is None:
                trace = hub.trace
            if metrics is None:
                metrics = hub.metrics
            if profiler is None:
                profiler = hub.profiler
        self._now = 0.0
        #: Ambient tie-break permutation salt captured at construction
        #: (see :func:`repro.sim.scheduler.tiebreak_permutation`); None
        #: means the canonical FIFO tie-break.
        self.tiebreak_salt = current_tiebreak_salt()
        self._queue = (EventScheduler() if self.tiebreak_salt is None
                       else PermutedEventScheduler(self.tiebreak_salt))
        self._running = False
        self._stopped = False
        self.streams = RandomStreams(seed)
        # Trace-recorder watchers: hot-path components (links, hosts)
        # cache the recorder locally so disabled observability costs a
        # single attribute check; assigning ``sim.trace`` rebinds them.
        self._trace_watchers: list = []
        self._trace = trace if trace is not None else TraceRecorder(enabled=False)
        self.metrics = metrics if metrics is not None else MetricsRegistry(enabled=False)
        # Publish the lazily-cancelled backlog so the observatory can see
        # timer churn; a disabled registry hands back the no-op metric.
        self._queue.backlog_gauge = self.metrics.gauge(
            "scheduler.cancelled_backlog")
        self.profiler = profiler
        #: No-progress watchdog: when this many events fire at a single
        #: simulated instant, :meth:`run` raises
        #: :class:`~repro.errors.StallError` with a pending-event dump
        #: instead of spinning forever.  ``None`` disables the watchdog.
        self.stall_event_limit = stall_event_limit
        self._stall_time = float("nan")
        self._stall_count = 0
        #: Same-timestamp event groups fired by :meth:`run` (two or more
        #: events at one simulated instant) and the largest group seen.
        #: Each group is a point where the FIFO tie-break chose an order;
        #: the totals roll up into the process-wide
        #: :func:`tie_break_stats` for run summaries and manifests.
        self.tie_break_groups = 0
        self.tie_break_max = 0
        self._tb_published_groups = 0
        # Happens-before provenance plane (repro.hb).  ``_prov`` caches
        # ``trace.enabled and trace.provenance`` so the hot loop pays a
        # single local check; ``_exec_seq`` is the seq of the event whose
        # callback is currently running (the scheduling parent stamped
        # onto children).  The entity registry pins owners alive so
        # ``id()`` reuse cannot misattribute events.
        self._prov = self._trace.enabled and getattr(
            self._trace, "provenance", False)
        self._exec_seq: Optional[int] = None
        #: Logical push time of the event whose callback is currently
        #: running (see :mod:`repro.sim.event`).  The batched link
        #: datapath compares it against planned dequeue instants to
        #: decide whether a same-timestamp occupancy release has
        #: logically happened yet.
        self.exec_lpush = 0.0
        self._entity_names: Dict[int, Any] = {}
        self._entity_counts: Dict[str, int] = {}
        #: Number of events executed so far (diagnostic).
        self.events_run = 0
        #: Scheduler events the batched datapath *eliminated*: heap
        #: traffic the per-packet (unbatched) execution would have fired
        #: but a packet-train plan advanced analytically instead (see
        #: :mod:`repro.net.link`).  ``events_run + events_absorbed``
        #: is the logical event count of the equivalent unbatched run —
        #: the number benchmark events/s figures are measured against,
        #: so batched and unbatched runs stay comparable row-for-row.
        self.events_absorbed = 0
        #: Ground-truth per-flow packet drops (queue overflow + in-flight
        #: loss), keyed by flow id.  Links update this; experiments read
        #: it to classify trials as lossy (paper Fig. 8).
        self.flow_drops: Dict[int, int] = {}

    def note_drop(self, flow_id: int) -> None:
        """Record one dropped packet for ``flow_id``."""
        self.flow_drops[flow_id] = self.flow_drops.get(flow_id, 0) + 1

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    # ------------------------------------------------------------------
    # Trace recorder
    # ------------------------------------------------------------------

    @property
    def trace(self) -> TraceRecorder:
        """The active trace recorder.

        Assigning a replacement recorder (telemetry sessions and the
        Fig. 3 walk-through do this) rebinds every watcher registered
        via :meth:`watch_trace`, so components that cached the recorder
        keep seeing the live one.
        """
        return self._trace

    @trace.setter
    def trace(self, recorder: TraceRecorder) -> None:
        self._trace = recorder
        self._refresh_provenance()
        for rebind in self._trace_watchers:
            rebind(recorder)

    def _refresh_provenance(self) -> bool:
        """Re-cache the provenance-on flag from the active recorder.

        Called when the recorder is replaced and on every :meth:`run`
        entry, so sessions that flip ``trace.provenance`` in place (the
        audit/hb sessions do) take effect at the next run.
        """
        self._prov = self._trace.enabled and getattr(
            self._trace, "provenance", False)
        return self._prov

    def watch_trace(self, rebind: Callable[[TraceRecorder], None]) -> None:
        """Register ``rebind``; it is called immediately with the current
        recorder and again whenever ``sim.trace`` is reassigned.

        Topology-lifetime components (links, hosts) use this to cache
        the recorder in an instance attribute, making the disabled-
        observability guard on their per-packet paths a single attribute
        check instead of a ``sim.trace`` indirection.
        """
        rebind(self._trace)
        self._trace_watchers.append(rebind)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------

    def schedule(
        self,
        delay: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = 0,
    ) -> EventHandle:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now.

        Raises :class:`SimulationError` if ``delay`` is negative.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay:.9f}s into the past")
        return self.schedule_at(self._now + delay, callback, *args, priority=priority)

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = 0,
    ) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute simulated ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time:.9f} before now={self._now:.9f}"
            )
        event = Event(time, callback, args, priority=priority)
        event.lpush = self._now
        if self._prov:
            event.parent = self._exec_seq
        self._queue.push(event)
        return _TrackedHandle(event, self._queue)

    def schedule_fast(self, time: float, callback: Callable[..., Any],
                      *args: Any, lpush: Optional[float] = None) -> None:
        """Handle-free :meth:`schedule_at` for never-cancelled hot events.

        The batched link datapath schedules thousands of delivery events
        per run that are never cancelled and never inspected; skipping
        the :class:`EventHandle` allocation and the past-time guard (the
        caller computes times from ``now`` plus non-negative spans) is a
        measurable share of per-event cost.  Sequence numbers still come
        from the global event counter.

        ``lpush`` back-dates the event's logical push time to the
        instant the per-packet (unbatched) execution would have
        scheduled it — the scheduler orders same-timestamp events by
        ``(lpush, seq)``, so a train-planned delivery scheduled early
        still fires in exactly the slot its unbatched counterpart would
        have occupied.  Defaults to ``now`` (ordinary FIFO semantics).
        """
        event = Event(time, callback, args)
        event.lpush = self._now if lpush is None else lpush
        if self._prov:
            event.parent = self._exec_seq
        self._queue.push(event)

    # ------------------------------------------------------------------
    # Happens-before provenance
    # ------------------------------------------------------------------

    def _event_entity(self, callback: Callable[..., Any]) -> str:
        """Stable entity name for the state ``callback`` runs against.

        The entity is the callback's owner: the bound-method receiver
        (link, host, queue, timer, pacer, ...) or the function object
        itself for free functions and closures.  Distinct owner
        *instances* get distinct names — entity identity is the shared-
        mutable-state proxy the nondeterminism checker keys on.

        An owner holding genuinely independent halves can refine the
        proxy with a class-level ``HB_PARTITIONS`` map (callback name ->
        partition label): listed callbacks run against a ``owner/label``
        sub-entity instead of the owner itself.  Declaring a partition
        asserts the listed callbacks share no mutable state with the
        owner's other callbacks — see :class:`repro.net.link.Link`.
        """
        owner = getattr(callback, "__self__", callback)
        key = id(owner)
        cached = self._entity_names.get(key)
        if cached is not None:
            return self._partitioned(owner, callback, cached[1])
        name = getattr(owner, "name", None)
        if isinstance(name, str) and name:
            # A .name can be a *class* attribute shared by every
            # instance (chaos impairments); suffix repeats so distinct
            # owners never collapse into one entity.
            index = self._entity_counts.get(name, 0)
            self._entity_counts[name] = index + 1
            if index:
                name = f"{name}#{index}"
        else:
            flow_id = getattr(owner, "flow_id", None)
            if flow_id is not None:
                name = f"flow:{flow_id}"
            else:
                if owner is callback:
                    base = getattr(callback, "__qualname__", repr(callback))
                else:
                    base = type(owner).__name__
                index = self._entity_counts.get(base, 0)
                self._entity_counts[base] = index + 1
                name = f"{base}#{index}"
        # Pin the owner: if it were collected, a recycled id() could
        # alias a new object onto this entity.
        self._entity_names[key] = (owner, name)
        return self._partitioned(owner, callback, name)

    @staticmethod
    def _partitioned(owner: Any, callback: Callable[..., Any],
                     name: str) -> str:
        partitions = getattr(owner, "HB_PARTITIONS", None)
        if partitions:
            label = partitions.get(getattr(callback, "__name__", ""))
            if label:
                return f"{name}/{label}"
        return name

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> float:
        """Run events until the queue drains, ``until`` is reached, or
        ``max_events`` have fired.  Returns the final simulated time.

        When ``until`` is given the clock is advanced to exactly ``until``
        even if the queue drains earlier, so back-to-back ``run`` calls
        compose predictably.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        self._stopped = False
        fired = 0
        profiler = self.profiler
        stall_limit = self.stall_event_limit
        prov = self._refresh_provenance()
        if profiler is not None:
            profiler.begin_run()
        try:
            while True:
                if self._stopped:
                    break
                if max_events is not None and fired >= max_events:
                    break
                next_time = self._queue.peek_time()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    break
                event = self._queue.pop()
                if event is None:  # pragma: no cover - raced cancellation
                    break
                self._now = event.time
                self.exec_lpush = event.lpush
                # The same-instant counter doubles as the stall watchdog
                # and the tie-break exposure accounting: every group of
                # two or more events at one instant is a point where the
                # scheduler's tie-break chose an execution order.
                if event.time == self._stall_time:
                    self._stall_count += 1
                    if self._stall_count == 2:
                        self.tie_break_groups += 1
                    if self._stall_count > self.tie_break_max:
                        self.tie_break_max = self._stall_count
                    if stall_limit is not None and self._stall_count > stall_limit:
                        # Lead the dump with the event about to fire:
                        # it is already popped (so not in the queue
                        # snapshot), and in a tight zero-delay cycle
                        # it IS the loop.
                        raise StallError(
                            event.time, self._stall_count,
                            ["firing: "
                             + self._queue.render_event(event)]
                            + self._queue.snapshot(),
                        )
                else:
                    self._stall_time = event.time
                    self._stall_count = 1
                if prov:
                    self._exec_seq = event.seq
                    callback = event.callback
                    self._trace.record(
                        event.time, EV_SCHED_EXEC,
                        self._event_entity(callback),
                        seq=event.seq, parent=event.parent,
                        callback=getattr(callback, "__qualname__",
                                         repr(callback)),
                        prio=event.priority)
                if profiler is None:
                    event.fire()
                else:
                    callback = event.callback
                    started = profiler.clock()
                    event.fire()
                    profiler.on_event(callback,
                                      profiler.clock() - started,
                                      self._queue.heap_depth)
                self.events_run += 1
                fired += 1
        except BaseException as exc:
            # Post-mortem marker: lets flight recorders (repro.audit)
            # capture the crash site with the lineage ring still warm.
            self.trace.record(self._now, EV_SIM_CRASH, "simulator",
                              error=f"{type(exc).__name__}: {exc}")
            raise
        finally:
            self._running = False
            self._exec_seq = None
            self._publish_tie_breaks()
            if profiler is not None:
                profiler.end_run()
        if until is not None and self._now < until and not self._stopped:
            self._now = until
        return self._now

    def step(self) -> bool:
        """Run exactly one event.  Returns False if the queue was empty."""
        event = self._queue.pop()
        if event is None:
            return False
        self._now = event.time
        self.exec_lpush = event.lpush
        profiler = self.profiler
        if profiler is None:
            event.fire()
        else:
            callback = event.callback
            started = profiler.clock()
            event.fire()
            profiler.on_event(callback, profiler.clock() - started,
                              self._queue.heap_depth)
        self.events_run += 1
        return True

    def _publish_tie_breaks(self) -> None:
        """Fold this simulator's tie-break counters into the process-wide
        totals.  Delta-based so repeated :meth:`run` calls on one
        simulator (phased experiments) are not double-counted."""
        groups = self.tie_break_groups
        if groups != self._tb_published_groups:
            _TIE_BREAK_STATS["groups"] += groups - self._tb_published_groups
            self._tb_published_groups = groups
        if self.tie_break_max > _TIE_BREAK_STATS["max_group"]:
            _TIE_BREAK_STATS["max_group"] = self.tie_break_max

    def stop(self) -> None:
        """Stop the current :meth:`run` after the executing event returns."""
        self._stopped = True

    def pending(self) -> int:
        """Approximate number of live queued events."""
        return len(self._queue)

    def timer(self, callback: Callable[[], Any], name: str = "") -> "Timer":
        """Create a restartable :class:`Timer` bound to this simulator."""
        return Timer(self, callback, name=name)


class _TrackedHandle(EventHandle):
    """Event handle that keeps the scheduler's live-count accurate."""

    __slots__ = ("_scheduler",)

    def __init__(self, event: Event, scheduler: EventScheduler) -> None:
        super().__init__(event)
        self._scheduler = scheduler

    def cancel(self) -> None:
        if not self._event.cancelled:
            self._scheduler.note_cancelled()
        super().cancel()


class Timer:
    """A restartable one-shot timer.

    Used for retransmission timeouts: ``restart(rto)`` cancels any pending
    expiry and arms a new one.  The callback takes no arguments.
    """

    def __init__(self, sim: Simulator, callback: Callable[[], Any], name: str = "") -> None:
        self._sim = sim
        self._callback = callback
        self._handle: Optional[EventHandle] = None
        self.name = name
        #: Number of times the timer has expired (diagnostic).
        self.expirations = 0

    @property
    def armed(self) -> bool:
        """True while an expiry is pending."""
        return self._handle is not None and self._handle.active

    @property
    def expiry_time(self) -> Optional[float]:
        """Absolute time of the pending expiry, or None when idle."""
        if self.armed:
            assert self._handle is not None
            return self._handle.time
        return None

    def start(self, delay: float) -> None:
        """Arm the timer ``delay`` seconds from now; error if already armed."""
        if self.armed:
            raise SimulationError(f"timer {self.name!r} already armed")
        self._handle = self._sim.schedule(delay, self._fire)

    def restart(self, delay: float) -> None:
        """Cancel any pending expiry and arm a new one."""
        self.cancel()
        self.start(delay)

    def cancel(self) -> None:
        """Disarm the timer; safe to call when idle."""
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def _fire(self) -> None:
        self._handle = None
        self.expirations += 1
        self._callback()
