"""The event queue backing the simulator.

A thin wrapper around :mod:`heapq` that understands lazily-cancelled
events.  Separated from :class:`~repro.sim.simulator.Simulator` so the
queue can be unit- and property-tested in isolation.

The heap stores ``(time, priority, lpush, seq, event)`` tuples rather
than the :class:`~repro.sim.event.Event` objects themselves.  The
``seq`` tiebreaker is unique, so sift comparisons always resolve within
the scalar slots and never fall through to the event — every comparison
is a C-level tuple compare instead of a Python-level ``Event.__lt__``
call, which is where timer-heavy workloads spend most of their
scheduler time.  ``lpush`` (logical push time — see
:mod:`repro.sim.event`) equals the scheduling instant for ordinary
events, where it is redundant with ``seq``; the batched link datapath
back-dates it on train-planned deliveries so same-timestamp collisions
order exactly as the per-packet execution would have ordered them.

A seeded **tie-break permutation** mode backs the schedule-perturbation
harness (:mod:`repro.hb.perturb`): :class:`PermutedEventScheduler`
replaces the FIFO ``seq`` tie-break with a deterministic bijective
scramble of it, so same-``(time, priority)`` events fire in a permuted
(but still reproducible) order.  Such a permutation is always a *valid*
causal execution — an event scheduled by another cannot exist in the
heap before its parent fired — so any behavioural difference it exposes
is a genuine execution-order sensitivity.  The ambient salt
(:func:`tiebreak_permutation`) is picked up by ``Simulator`` at
construction; the default scheduler's hot path is untouched.

Cancellation is lazy (O(1)): cancelled events stay in the heap until
popped.  Timer-heavy workloads — an RTO timer restarted on every ACK —
can therefore grow a large backlog of dead entries that every push/pop
still pays log-time for.  The scheduler *compacts* the heap (filter +
re-heapify, O(n)) once the cancelled backlog is both large in absolute
terms and the majority of the heap; amortized against the cancellations
that created the backlog this is O(1) per cancellation.  The backlog is
published through :attr:`backlog_gauge` (``scheduler.cancelled_backlog``
when a telemetry session is active) so the performance observatory can
see the churn.
"""

from __future__ import annotations

import heapq
from contextlib import contextmanager
from typing import Iterator, List, Optional, Tuple

from repro.sim.event import Event
from repro.telemetry.metrics import NULL_METRIC

__all__ = ["EventScheduler", "PermutedEventScheduler",
           "tiebreak_permutation", "current_tiebreak_salt"]

#: Never compact below this many cancelled entries (a small heap's
#: rebuild cost is not worth saving, and tiny heaps skew the fraction).
DEFAULT_COMPACT_MIN = 256

#: Compact when cancelled entries exceed this fraction of the heap.
DEFAULT_COMPACT_FRACTION = 0.5

#: Argument reprs longer than this are elided in diagnostic dumps so a
#: StallError carrying full-payload packets stays readable.
MAX_ARG_REPR = 120

#: Heap entry layout: ``(time, priority, lpush, seq, event)``; the
#: permuted scheduler stores ``(time, priority, mixed, seq, event)``.
#: The event is always the *last* slot, and every slot before it is a
#: scalar, so sift comparisons never fall through to ``Event.__lt__``.
_Entry = Tuple[float, int, float, int, Event]


# ----------------------------------------------------------------------
# Ambient tie-break permutation (schedule-perturbation harness)
# ----------------------------------------------------------------------

#: Ambient salt consumed by ``Simulator`` at construction; None means
#: the canonical FIFO tie-break.
_TIEBREAK_SALT: Optional[int] = None


def current_tiebreak_salt() -> Optional[int]:
    """The ambient tie-break permutation salt (None = FIFO order)."""
    return _TIEBREAK_SALT


@contextmanager
def tiebreak_permutation(salt: int) -> Iterator[int]:
    """Make simulators built inside the context permute same-timestamp
    tie-breaks with ``salt`` (see :class:`PermutedEventScheduler`)."""
    global _TIEBREAK_SALT
    previous = _TIEBREAK_SALT
    _TIEBREAK_SALT = int(salt)
    try:
        yield int(salt)
    finally:
        _TIEBREAK_SALT = previous


_MASK64 = (1 << 64) - 1


def _mix(seq: int, salt: int) -> int:
    """Deterministic 64-bit scramble of ``seq`` under ``salt``
    (splitmix64 finalizer) — the permuted tie-break key."""
    x = (seq ^ (salt * 0x9E3779B97F4A7C15)) & _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return x ^ (x >> 31)


class EventScheduler:
    """A min-heap of events ordered by (time, priority, lpush, seq).

    Parameters
    ----------
    compact_min / compact_fraction:
        Compaction triggers when the cancelled backlog is at least
        ``compact_min`` entries *and* more than ``compact_fraction`` of
        the raw heap.  ``compact_min=0`` disables compaction.
    """

    def __init__(self, compact_min: int = DEFAULT_COMPACT_MIN,
                 compact_fraction: float = DEFAULT_COMPACT_FRACTION) -> None:
        self._heap: List[_Entry] = []
        self._live = 0
        self._cancelled = 0
        self.compact_min = compact_min
        self.compact_fraction = compact_fraction
        #: Number of compaction passes performed (diagnostic).
        self.compactions = 0
        #: Telemetry gauge for the cancelled backlog; the simulator
        #: rebinds this to ``scheduler.cancelled_backlog`` when a metrics
        #: registry is enabled.  The default no-op keeps the hot path an
        #: empty call when telemetry is off.
        self.backlog_gauge = NULL_METRIC

    def push(self, event: Event) -> None:
        """Insert an event into the queue."""
        heapq.heappush(
            self._heap,
            (event.time, event.priority, event.lpush, event.seq, event),
        )
        self._live += 1

    def pop(self) -> Optional[Event]:
        """Remove and return the next live event, or None if empty.

        Cancelled events encountered on the way are discarded.
        """
        discarded = 0
        heap = self._heap
        while heap:
            event = heapq.heappop(heap)[-1]
            if event.cancelled:
                discarded += 1
                continue
            if discarded:
                self._note_discarded(discarded)
            self._live -= 1
            return event
        self._live = 0
        if discarded:
            self._note_discarded(discarded)
        return None

    def peek_time(self) -> Optional[float]:
        """Return the firing time of the next live event without popping."""
        discarded = 0
        heap = self._heap
        while heap and heap[0][-1].cancelled:
            heapq.heappop(heap)
            discarded += 1
        if discarded:
            self._note_discarded(discarded)
        if not heap:
            self._live = 0
            return None
        return heap[0][0]

    def note_cancelled(self) -> None:
        """Record that one queued event was cancelled (for __len__ and
        the backlog accounting); may trigger compaction."""
        if self._live > 0:
            self._live -= 1
        self._cancelled += 1
        self.backlog_gauge.set(self._cancelled)
        self._maybe_compact()

    def clear(self) -> None:
        """Drop every queued event."""
        self._heap.clear()
        self._live = 0
        self._cancelled = 0
        self.backlog_gauge.set(0)

    # ------------------------------------------------------------------
    # Cancelled-backlog accounting and compaction
    # ------------------------------------------------------------------

    def _note_discarded(self, n: int) -> None:
        """Account ``n`` cancelled entries leaving the heap via pop/peek."""
        self._cancelled = max(0, self._cancelled - n)
        self.backlog_gauge.set(self._cancelled)

    def _maybe_compact(self) -> None:
        if self.compact_min <= 0 or self._cancelled < self.compact_min:
            return
        if self._cancelled <= self.compact_fraction * len(self._heap):
            return
        self._heap = [entry for entry in self._heap
                      if not entry[-1].cancelled]
        heapq.heapify(self._heap)
        self._cancelled = 0
        self.compactions += 1
        self.backlog_gauge.set(0)

    @staticmethod
    def render_event(event) -> str:
        """One diagnostic line for ``event`` (shared with the stall dump).

        Argument reprs are elided beyond :data:`MAX_ARG_REPR` characters
        so a pending-event dump with full-payload packets stays readable.
        """
        name = getattr(event.callback, "__qualname__",
                       repr(event.callback))
        parts = []
        for arg in event.args:
            text = repr(arg)
            if len(text) > MAX_ARG_REPR:
                text = text[:MAX_ARG_REPR - 3] + "..."
            parts.append(text)
        args = ", ".join(parts)
        return f"t={event.time:.9f} prio={event.priority} {name}({args})"

    def snapshot(self, limit: int = 10) -> List[str]:
        """Render the next ``limit`` live events (for stall diagnostics).

        O(n log n) over the raw heap — diagnostic-path only, never called
        while the simulator is healthy.
        """
        live = sorted(e for e in self._heap if not e[-1].cancelled)
        out = [self.render_event(entry[-1]) for entry in live[:limit]]
        remaining = len(live) - limit
        if remaining > 0:
            out.append(f"... and {remaining} more")
        return out

    @property
    def cancelled_backlog(self) -> int:
        """Lazily-cancelled entries still sitting in the heap (exact if
        callers use :meth:`note_cancelled` for every cancellation, as
        Simulator does)."""
        return self._cancelled

    @property
    def heap_depth(self) -> int:
        """Raw heap size including lazily-cancelled entries — the number
        that matters for per-operation cost (telemetry profiling)."""
        return len(self._heap)

    def __len__(self) -> int:
        """Approximate number of live events (exact if callers use
        :meth:`note_cancelled` for every cancellation, as Simulator does)."""
        return self._live

    def __bool__(self) -> bool:
        return self.peek_time() is not None


class PermutedEventScheduler(EventScheduler):
    """An :class:`EventScheduler` with a seeded same-timestamp tie-break.

    Orders same-``(time, priority)`` events by a salted bijective
    scramble of their sequence number instead of FIFO.  Used by the
    schedule-perturbation harness (:mod:`repro.hb.perturb`) to prove
    that the canonical FIFO tie-break carries no hidden ordering
    dependence: a permuted run must produce a bit-identical report
    fingerprint.

    Heap entries are ``(time, priority, mixed, seq, event)`` — ``seq``
    stays as a final scalar tie-break so comparisons never reach the
    event even in the astronomically unlikely case of a mixed-key
    collision.  ``lpush`` is deliberately *not* part of the key: the
    whole point of a perturbed run is to scramble same-timestamp order,
    and restricting the scramble to equal-``lpush`` groups would weaken
    the harness.
    """

    def __init__(self, salt: int,
                 compact_min: int = DEFAULT_COMPACT_MIN,
                 compact_fraction: float = DEFAULT_COMPACT_FRACTION) -> None:
        super().__init__(compact_min=compact_min,
                         compact_fraction=compact_fraction)
        #: The permutation salt (exposed for diagnostics and manifests).
        self.salt = int(salt)
        # Event.seq is a process-global counter; anchoring the scramble
        # to the first seq this scheduler sees makes a salted run
        # reproducible regardless of how many events earlier simulators
        # in the process already consumed.
        self._seq_base: Optional[int] = None

    def push(self, event: Event) -> None:
        """Insert an event, keyed by the salted tie-break scramble."""
        if self._seq_base is None:
            self._seq_base = event.seq
        heapq.heappush(
            self._heap,
            (event.time, event.priority,
             _mix(event.seq - self._seq_base, self.salt),
             event.seq, event),
        )
        self._live += 1
