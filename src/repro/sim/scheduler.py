"""The event queue backing the simulator.

A thin wrapper around :mod:`heapq` that understands lazily-cancelled
events.  Separated from :class:`~repro.sim.simulator.Simulator` so the
queue can be unit- and property-tested in isolation.
"""

from __future__ import annotations

import heapq
from typing import List, Optional

from repro.sim.event import Event

__all__ = ["EventScheduler"]


class EventScheduler:
    """A min-heap of :class:`Event` ordered by (time, priority, seq)."""

    def __init__(self) -> None:
        self._heap: List[Event] = []
        self._live = 0

    def push(self, event: Event) -> None:
        """Insert an event into the queue."""
        heapq.heappush(self._heap, event)
        self._live += 1

    def pop(self) -> Optional[Event]:
        """Remove and return the next live event, or None if empty.

        Cancelled events encountered on the way are discarded.
        """
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._live -= 1
            return event
        self._live = 0
        return None

    def peek_time(self) -> Optional[float]:
        """Return the firing time of the next live event without popping."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            self._live = 0
            return None
        return self._heap[0].time

    def note_cancelled(self) -> None:
        """Record that one queued event was cancelled (for __len__)."""
        if self._live > 0:
            self._live -= 1

    def clear(self) -> None:
        """Drop every queued event."""
        self._heap.clear()
        self._live = 0

    @property
    def heap_depth(self) -> int:
        """Raw heap size including lazily-cancelled entries — the number
        that matters for per-operation cost (telemetry profiling)."""
        return len(self._heap)

    def __len__(self) -> int:
        """Approximate number of live events (exact if callers use
        :meth:`note_cancelled` for every cancellation, as Simulator does)."""
        return self._live

    def __bool__(self) -> bool:
        return self.peek_time() is not None
