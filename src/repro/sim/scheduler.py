"""The event queue backing the simulator.

A thin wrapper around :mod:`heapq` that understands lazily-cancelled
events.  Separated from :class:`~repro.sim.simulator.Simulator` so the
queue can be unit- and property-tested in isolation.

The heap stores ``(time, priority, seq, event)`` tuples rather than the
:class:`~repro.sim.event.Event` objects themselves.  The ``seq``
tiebreaker is unique, so sift comparisons always resolve within the
first three scalar slots and never fall through to the event — every
comparison is a C-level tuple compare instead of a Python-level
``Event.__lt__`` call, which is where timer-heavy workloads spend most
of their scheduler time.

Cancellation is lazy (O(1)): cancelled events stay in the heap until
popped.  Timer-heavy workloads — an RTO timer restarted on every ACK —
can therefore grow a large backlog of dead entries that every push/pop
still pays log-time for.  The scheduler *compacts* the heap (filter +
re-heapify, O(n)) once the cancelled backlog is both large in absolute
terms and the majority of the heap; amortized against the cancellations
that created the backlog this is O(1) per cancellation.  The backlog is
published through :attr:`backlog_gauge` (``scheduler.cancelled_backlog``
when a telemetry session is active) so the performance observatory can
see the churn.
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Tuple

from repro.sim.event import Event
from repro.telemetry.metrics import NULL_METRIC

__all__ = ["EventScheduler"]

#: Never compact below this many cancelled entries (a small heap's
#: rebuild cost is not worth saving, and tiny heaps skew the fraction).
DEFAULT_COMPACT_MIN = 256

#: Compact when cancelled entries exceed this fraction of the heap.
DEFAULT_COMPACT_FRACTION = 0.5

#: Argument reprs longer than this are elided in diagnostic dumps so a
#: StallError carrying full-payload packets stays readable.
MAX_ARG_REPR = 120

#: Heap entry layout: ``(time, priority, seq, event)``.
_Entry = Tuple[float, int, int, Event]


class EventScheduler:
    """A min-heap of events ordered by (time, priority, seq).

    Parameters
    ----------
    compact_min / compact_fraction:
        Compaction triggers when the cancelled backlog is at least
        ``compact_min`` entries *and* more than ``compact_fraction`` of
        the raw heap.  ``compact_min=0`` disables compaction.
    """

    def __init__(self, compact_min: int = DEFAULT_COMPACT_MIN,
                 compact_fraction: float = DEFAULT_COMPACT_FRACTION) -> None:
        self._heap: List[_Entry] = []
        self._live = 0
        self._cancelled = 0
        self.compact_min = compact_min
        self.compact_fraction = compact_fraction
        #: Number of compaction passes performed (diagnostic).
        self.compactions = 0
        #: Telemetry gauge for the cancelled backlog; the simulator
        #: rebinds this to ``scheduler.cancelled_backlog`` when a metrics
        #: registry is enabled.  The default no-op keeps the hot path an
        #: empty call when telemetry is off.
        self.backlog_gauge = NULL_METRIC

    def push(self, event: Event) -> None:
        """Insert an event into the queue."""
        heapq.heappush(
            self._heap, (event.time, event.priority, event.seq, event)
        )
        self._live += 1

    def pop(self) -> Optional[Event]:
        """Remove and return the next live event, or None if empty.

        Cancelled events encountered on the way are discarded.
        """
        discarded = 0
        heap = self._heap
        while heap:
            event = heapq.heappop(heap)[3]
            if event.cancelled:
                discarded += 1
                continue
            if discarded:
                self._note_discarded(discarded)
            self._live -= 1
            return event
        self._live = 0
        if discarded:
            self._note_discarded(discarded)
        return None

    def peek_time(self) -> Optional[float]:
        """Return the firing time of the next live event without popping."""
        discarded = 0
        heap = self._heap
        while heap and heap[0][3].cancelled:
            heapq.heappop(heap)
            discarded += 1
        if discarded:
            self._note_discarded(discarded)
        if not heap:
            self._live = 0
            return None
        return heap[0][0]

    def note_cancelled(self) -> None:
        """Record that one queued event was cancelled (for __len__ and
        the backlog accounting); may trigger compaction."""
        if self._live > 0:
            self._live -= 1
        self._cancelled += 1
        self.backlog_gauge.set(self._cancelled)
        self._maybe_compact()

    def clear(self) -> None:
        """Drop every queued event."""
        self._heap.clear()
        self._live = 0
        self._cancelled = 0
        self.backlog_gauge.set(0)

    # ------------------------------------------------------------------
    # Cancelled-backlog accounting and compaction
    # ------------------------------------------------------------------

    def _note_discarded(self, n: int) -> None:
        """Account ``n`` cancelled entries leaving the heap via pop/peek."""
        self._cancelled = max(0, self._cancelled - n)
        self.backlog_gauge.set(self._cancelled)

    def _maybe_compact(self) -> None:
        if self.compact_min <= 0 or self._cancelled < self.compact_min:
            return
        if self._cancelled <= self.compact_fraction * len(self._heap):
            return
        self._heap = [entry for entry in self._heap if not entry[3].cancelled]
        heapq.heapify(self._heap)
        self._cancelled = 0
        self.compactions += 1
        self.backlog_gauge.set(0)

    @staticmethod
    def render_event(event) -> str:
        """One diagnostic line for ``event`` (shared with the stall dump).

        Argument reprs are elided beyond :data:`MAX_ARG_REPR` characters
        so a pending-event dump with full-payload packets stays readable.
        """
        name = getattr(event.callback, "__qualname__",
                       repr(event.callback))
        parts = []
        for arg in event.args:
            text = repr(arg)
            if len(text) > MAX_ARG_REPR:
                text = text[:MAX_ARG_REPR - 3] + "..."
            parts.append(text)
        args = ", ".join(parts)
        return f"t={event.time:.9f} prio={event.priority} {name}({args})"

    def snapshot(self, limit: int = 10) -> List[str]:
        """Render the next ``limit`` live events (for stall diagnostics).

        O(n log n) over the raw heap — diagnostic-path only, never called
        while the simulator is healthy.
        """
        live = sorted(e for e in self._heap if not e[3].cancelled)
        out = [self.render_event(entry[3]) for entry in live[:limit]]
        remaining = len(live) - limit
        if remaining > 0:
            out.append(f"... and {remaining} more")
        return out

    @property
    def cancelled_backlog(self) -> int:
        """Lazily-cancelled entries still sitting in the heap (exact if
        callers use :meth:`note_cancelled` for every cancellation, as
        Simulator does)."""
        return self._cancelled

    @property
    def heap_depth(self) -> int:
        """Raw heap size including lazily-cancelled entries — the number
        that matters for per-operation cost (telemetry profiling)."""
        return len(self._heap)

    def __len__(self) -> int:
        """Approximate number of live events (exact if callers use
        :meth:`note_cancelled` for every cancellation, as Simulator does)."""
        return self._live

    def __bool__(self) -> bool:
        return self.peek_time() is not None
