"""Discrete-event simulation engine (substrate 1).

Public surface::

    from repro.sim import Simulator, Timer, TraceRecorder

"""

from repro.sim.event import Event, EventHandle
from repro.sim.randomness import RandomStreams, derive_seed
from repro.sim.scheduler import EventScheduler
from repro.sim.simulator import Simulator, Timer
from repro.sim.trace import TraceRecord, TraceRecorder

__all__ = [
    "Event",
    "EventHandle",
    "EventScheduler",
    "RandomStreams",
    "Simulator",
    "Timer",
    "TraceRecord",
    "TraceRecorder",
    "derive_seed",
]
