"""Seeded, named random streams.

Experiments must be reproducible and *comparable*: the paper repeats the
same flow-arrival schedule across protocols ("all the experiments for
different schemes use the same schedule of flow arrivals", §4.3.2).  To
make that easy, every consumer of randomness asks for a **named stream**;
two simulators built with the same master seed hand out identical streams
for identical names regardless of the order in which other components
drew randomness.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict

__all__ = ["RandomStreams", "derive_seed"]


def derive_seed(master_seed: int, name: str) -> int:
    """Derive a 64-bit child seed from a master seed and a stream name.

    Uses SHA-256 rather than ``hash()`` so the derivation is stable across
    interpreter runs and PYTHONHASHSEED values.
    """
    digest = hashlib.sha256(f"{master_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class RandomStreams:
    """A factory of independent, deterministically-seeded RNGs."""

    def __init__(self, master_seed: int = 0) -> None:
        self.master_seed = master_seed
        self._streams: Dict[str, random.Random] = {}

    def get(self, name: str) -> random.Random:
        """Return the RNG for ``name``, creating it on first use.

        Repeated calls with the same name return the same object, so a
        component can re-fetch its stream without resetting it.
        """
        stream = self._streams.get(name)
        if stream is None:
            stream = random.Random(derive_seed(self.master_seed, name))
            self._streams[name] = stream
        return stream

    def fork(self, name: str) -> "RandomStreams":
        """Create a child namespace, e.g. one per flow or per trial."""
        return RandomStreams(derive_seed(self.master_seed, f"fork:{name}"))

    def __contains__(self, name: str) -> bool:
        return name in self._streams
