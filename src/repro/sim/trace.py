"""Structured trace recording.

Components emit trace records (packet sent, packet dropped, queue depth,
phase transitions) through ``sim.trace``.  Tracing defaults to disabled
and costs a single attribute check per call site; experiments that need
per-packet detail (the Fig. 3 walk-through, the Fig. 15 throughput
timelines) enable it and filter afterwards.

Two additions keep large workloads honest:

* ``max_records`` turns the in-memory store into a ring buffer — per-
  packet tracing cannot grow without bound, and every record lost to the
  ring is counted in :attr:`TraceRecorder.dropped_records`;
* ``sink`` streams every accepted record to an exporter (see
  :mod:`repro.telemetry.export`) before it touches the ring, so the
  on-disk trace stays complete even when the ring wraps.  Pass
  ``keep_records=False`` to stream only.

Two extension points serve the audit subsystem (:mod:`repro.audit`):

* ``lineage`` opts into per-packet hop events (``pkt.*``); emission
  sites in the network/transport layers guard on this flag so the
  default tracing cost is unchanged when auditing is off;
* observers registered via :meth:`TraceRecorder.add_observer` see every
  record *before* kind filtering, so a runtime invariant auditor can
  watch the full event stream while the in-memory/sink view stays
  filtered to what the user asked for.

The documented event-kind/detail-key contract lives in
:mod:`repro.telemetry.schema`.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, Iterator, List, Optional

__all__ = ["TraceRecord", "TraceRecorder"]


class TraceRecord:
    """One trace event.

    A hand-written ``__slots__`` class (not a dataclass): per-packet
    tracing allocates one per hop event, so construction cost and
    instance footprint matter.  Value equality is preserved for tests
    and replay comparisons.

    Attributes
    ----------
    time:
        Simulated time of the event.
    kind:
        Event category, e.g. ``"link.tx"``, ``"queue.drop"``,
        ``"halfback.phase"``.
    source:
        Name of the emitting component.
    detail:
        Free-form key/value payload.
    """

    __slots__ = ("time", "kind", "source", "detail")

    def __init__(self, time: float, kind: str, source: str,
                 detail: Optional[Dict[str, Any]] = None) -> None:
        self.time = time
        self.kind = kind
        self.source = source
        self.detail = detail if detail is not None else {}

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TraceRecord):
            return NotImplemented
        return (self.time == other.time and self.kind == other.kind
                and self.source == other.source
                and self.detail == other.detail)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"TraceRecord(time={self.time!r}, kind={self.kind!r}, "
                f"source={self.source!r}, detail={self.detail!r})")


class TraceRecorder:
    """Collects :class:`TraceRecord` objects in memory and/or a sink.

    Parameters
    ----------
    enabled:
        When False every :meth:`record` call is a cheap no-op.
    kinds:
        Optional whitelist of ``kind`` prefixes to keep; records whose kind
        does not start with any prefix are discarded.
    max_records:
        When set, keep only the newest ``max_records`` records in memory
        (ring-buffer mode); older records are dropped and counted in
        :attr:`dropped_records`.
    sink:
        Optional streaming exporter with a ``write(record)`` method; it
        sees every accepted record regardless of the ring bound.
    keep_records:
        When False nothing is stored in memory (stream-only mode;
        requires a sink to be useful).
    lineage:
        When True, packet-level lineage emission sites (``pkt.*`` hop
        events in links/hosts/receivers) fire; they stay silent
        otherwise so per-packet tracing remains opt-in.
    provenance:
        When True, the simulator stamps every scheduled event with its
        scheduling parent and emits ``sched.exec`` records for each
        executed event (the happens-before provenance plane consumed by
        :mod:`repro.hb`).  Off by default — the simulator hot loop pays
        nothing when this is False.
    """

    def __init__(self, enabled: bool = True, kinds: Optional[List[str]] = None,
                 max_records: Optional[int] = None, sink=None,
                 keep_records: bool = True, lineage: bool = False,
                 provenance: bool = False) -> None:
        if max_records is not None and max_records <= 0:
            raise ValueError("max_records must be positive (or None)")
        self.enabled = enabled
        self.lineage = lineage
        self.provenance = provenance
        self._kinds = tuple(kinds) if kinds else None
        self._max_records = max_records
        self._records: Deque[TraceRecord] = deque(maxlen=max_records)
        self.sink = sink
        self._keep = keep_records
        self._observers: List[Any] = []
        #: Records evicted from the ring buffer (ring mode only).
        self.dropped_records = 0

    @property
    def max_records(self) -> Optional[int]:
        """The ring-buffer bound, or None when unbounded."""
        return self._max_records

    def add_observer(self, observer) -> None:
        """Attach a callable receiving every :class:`TraceRecord`.

        Observers run before the kind filter so stream consumers (the
        audit subsystem) see events the user's filter would discard.
        """
        self._observers.append(observer)

    def remove_observer(self, observer) -> None:
        """Detach a previously attached observer (no-op if absent)."""
        try:
            self._observers.remove(observer)
        except ValueError:
            pass

    def record(self, time: float, kind: str, source: str, **detail: Any) -> None:
        """Record one event (no-op when disabled or filtered out)."""
        if not self.enabled:
            return
        rec = None
        if self._observers:
            rec = TraceRecord(time, kind, source, detail)
            for observer in self._observers:
                observer(rec)
        if self._kinds is not None and not kind.startswith(self._kinds):
            return
        if rec is None:
            rec = TraceRecord(time, kind, source, detail)
        if self.sink is not None:
            self.sink.write(rec)
        if self._keep:
            if (self._max_records is not None
                    and len(self._records) == self._max_records):
                self.dropped_records += 1
            self._records.append(rec)

    def records(self, kind: Optional[str] = None) -> List[TraceRecord]:
        """All in-memory records, optionally restricted to a kind prefix."""
        if kind is None:
            return list(self._records)
        return [r for r in self._records if r.kind.startswith(kind)]

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    def __len__(self) -> int:
        return len(self._records)

    def clear(self) -> None:
        """Drop all collected records (the drop counter too)."""
        self._records.clear()
        self.dropped_records = 0
