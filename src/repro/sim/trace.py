"""Structured trace recording.

Components emit trace records (packet sent, packet dropped, queue depth,
phase transitions) through ``sim.trace``.  Tracing defaults to disabled
and costs a single attribute check per call site; experiments that need
per-packet detail (the Fig. 3 walk-through, the Fig. 15 throughput
timelines) enable it and filter afterwards.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional

__all__ = ["TraceRecord", "TraceRecorder"]


@dataclass(frozen=True)
class TraceRecord:
    """One trace event.

    Attributes
    ----------
    time:
        Simulated time of the event.
    kind:
        Event category, e.g. ``"link.tx"``, ``"queue.drop"``,
        ``"halfback.phase"``.
    source:
        Name of the emitting component.
    detail:
        Free-form key/value payload.
    """

    time: float
    kind: str
    source: str
    detail: Dict[str, Any] = field(default_factory=dict)


class TraceRecorder:
    """Collects :class:`TraceRecord` objects in memory.

    Parameters
    ----------
    enabled:
        When False every :meth:`record` call is a cheap no-op.
    kinds:
        Optional whitelist of ``kind`` prefixes to keep; records whose kind
        does not start with any prefix are discarded.
    """

    def __init__(self, enabled: bool = True, kinds: Optional[List[str]] = None) -> None:
        self.enabled = enabled
        self._kinds = tuple(kinds) if kinds else None
        self._records: List[TraceRecord] = []

    def record(self, time: float, kind: str, source: str, **detail: Any) -> None:
        """Record one event (no-op when disabled or filtered out)."""
        if not self.enabled:
            return
        if self._kinds is not None and not kind.startswith(self._kinds):
            return
        self._records.append(TraceRecord(time, kind, source, detail))

    def records(self, kind: Optional[str] = None) -> List[TraceRecord]:
        """All records, optionally restricted to a kind prefix."""
        if kind is None:
            return list(self._records)
        return [r for r in self._records if r.kind.startswith(kind)]

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    def __len__(self) -> int:
        return len(self._records)

    def clear(self) -> None:
        """Drop all collected records."""
        self._records.clear()
